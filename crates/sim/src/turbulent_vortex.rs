//! The turbulent-vortex analog — Figure 9.
//!
//! The paper tracks a vortex from t = 50 to t = 74: "the tracked vortex moves
//! and changes its shape through time and splits near the end." This
//! generator scripts exactly that behaviour with ground truth: a lobed blob
//! follows a curved path, elongates, and separates into two components after
//! `split_t`.

use crate::noise::ValueNoise;
use crate::LabeledSeries;
use ifet_volume::{Dims3, Mask3, ScalarVolume, TimeSeries};

/// Generator parameters.
#[derive(Debug, Clone, Copy)]
pub struct TurbulentVortexParams {
    pub dims: Dims3,
    /// Inclusive step labels; the paper's figure spans 50..=74.
    pub t_start: u32,
    pub t_end: u32,
    pub stride: u32,
    /// Normalized time at which the feature splits in two.
    pub split_at: f32,
    pub seed: u64,
}

impl Default for TurbulentVortexParams {
    fn default() -> Self {
        Self {
            dims: Dims3::cube(48),
            t_start: 50,
            t_end: 74,
            stride: 2,
            split_at: 0.65,
            seed: 0x7042,
        }
    }
}

/// Paper-flavoured convenience (t = 50, 54, ..., 74).
pub fn turbulent_vortex(dims: Dims3, seed: u64) -> LabeledSeries {
    turbulent_vortex_with(TurbulentVortexParams {
        dims,
        seed,
        ..Default::default()
    })
}

/// Full-control generator.
pub fn turbulent_vortex_with(p: TurbulentVortexParams) -> LabeledSeries {
    assert!(p.t_end > p.t_start && p.stride > 0);
    let steps: Vec<u32> = (p.t_start..=p.t_end).step_by(p.stride as usize).collect();
    let span = (p.t_end - p.t_start) as f32;
    let noise = ValueNoise::new(p.seed);

    let mut frames = Vec::with_capacity(steps.len());
    let mut truth = Vec::with_capacity(steps.len());

    for &t in &steps {
        let tn = (t - p.t_start) as f32 / span;
        let (vol, mask) = frame(p.dims, tn, p.split_at, &noise);
        frames.push((t, vol));
        truth.push(mask);
    }

    let out = LabeledSeries {
        name: "turbulent_vortex".into(),
        series: TimeSeries::from_frames(frames),
        truth,
    };
    out.validate();
    out
}

/// The two lobe centers at normalized time `tn`. Before `split_at` the lobes
/// overlap (one connected feature); afterwards they separate.
pub fn lobe_centers(dims: Dims3, tn: f32, split_at: f32) -> ([f32; 3], [f32; 3], f32) {
    let n = dims.nx as f32;
    // Curved path across the volume.
    let base = [
        n * (0.25 + 0.45 * tn),
        n * (0.35 + 0.25 * (tn * 0.8 * std::f32::consts::PI).sin()),
        n * (0.30 + 0.30 * tn),
    ];
    let radius = n * (0.10 + 0.03 * (tn * 6.0).sin());
    // Separation grows after the split time.
    let sep = if tn <= split_at {
        // Slight elongation before the split (shape change).
        radius * 0.5 * (tn / split_at)
    } else {
        radius * (0.5 + 2.0 * (tn - split_at) / (1.0 - split_at))
    };
    let a = [base[0], base[1] - sep, base[2]];
    let b = [base[0], base[1] + sep, base[2]];
    (a, b, radius)
}

fn frame(dims: Dims3, tn: f32, split_at: f32, noise: &ValueNoise) -> (ScalarVolume, Mask3) {
    let (ca, cb, radius) = lobe_centers(dims, tn, split_at);
    let inv = 1.0 / dims.nx as f32;

    let lobe = |pos: [f32; 3], c: [f32; 3]| -> f32 {
        let dx = pos[0] - c[0];
        let dy = pos[1] - c[1];
        let dz = pos[2] - c[2];
        ((dx * dx + dy * dy + dz * dz).sqrt()) / radius
    };

    let vol = ScalarVolume::from_fn(dims, |x, y, z| {
        let pos = [x as f32, y as f32, z as f32];
        // Ambient turbulence filling the domain ("the original volume" that
        // gives the tracked feature context in Figure 9).
        let bg = 0.35
            * noise.fbm(
                pos[0] * inv * 6.0,
                pos[1] * inv * 6.0,
                pos[2] * inv * 6.0 + tn,
                3,
                0.5,
            );
        let s = lobe(pos, ca).min(lobe(pos, cb));
        let core = if s >= 1.0 { 0.0 } else { 0.8 * (1.0 - s * s) };
        0.1 + bg + core
    });

    let mask = Mask3::from_fn(dims, |x, y, z| {
        let pos = [x as f32, y as f32, z as f32];
        lobe(pos, ca).min(lobe(pos, cb)) < 0.85
    });

    (vol, mask)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn connected_components(m: &Mask3) -> usize {
        // Simple BFS component count (6-connectivity) for test purposes.
        let d = m.dims();
        let mut seen = vec![false; d.len()];
        let mut count = 0;
        for start in 0..d.len() {
            if !m.get_linear(start) || seen[start] {
                continue;
            }
            count += 1;
            let mut stack = vec![start];
            seen[start] = true;
            while let Some(i) = stack.pop() {
                let (x, y, z) = d.coords(i);
                for (nx, ny, nz) in d.neighbors6(x, y, z) {
                    let j = d.index(nx, ny, nz);
                    if m.get_linear(j) && !seen[j] {
                        seen[j] = true;
                        stack.push(j);
                    }
                }
            }
        }
        count
    }

    fn small() -> LabeledSeries {
        turbulent_vortex_with(TurbulentVortexParams {
            dims: Dims3::cube(32),
            ..Default::default()
        })
    }

    #[test]
    fn labels_match_paper() {
        let s = small();
        assert_eq!(
            s.series.steps(),
            &[50, 52, 54, 56, 58, 60, 62, 64, 66, 68, 70, 72, 74]
        );
        s.validate();
    }

    #[test]
    fn one_component_before_split_two_after() {
        let s = small();
        // tn at steps: 0, 1/6, ..., 1. split_at = 0.65 → split after step 66.
        let first = connected_components(&s.truth[0]);
        let last = connected_components(s.truth.last().unwrap());
        assert_eq!(first, 1, "feature must start connected");
        assert_eq!(last, 2, "feature must split into two");
    }

    #[test]
    fn feature_moves() {
        let s = small();
        let centroid = |m: &Mask3| {
            let mut c = [0.0f64; 3];
            let mut n = 0.0;
            for (x, y, z) in m.set_coords() {
                c[0] += x as f64;
                c[1] += y as f64;
                c[2] += z as f64;
                n += 1.0;
            }
            [c[0] / n, c[1] / n, c[2] / n]
        };
        let c0 = centroid(&s.truth[0]);
        let c6 = centroid(s.truth.last().unwrap());
        let dist =
            ((c6[0] - c0[0]).powi(2) + (c6[1] - c0[1]).powi(2) + (c6[2] - c0[2]).powi(2)).sqrt();
        assert!(dist > 5.0, "feature should travel, moved {dist}");
    }

    #[test]
    fn consecutive_frames_overlap() {
        // The tracking assumption: "sufficient temporal samplings for the
        // matching features to overlap in 3D space for consecutive time steps".
        let s = small();
        for i in 1..s.truth.len() {
            let inter = s.truth[i].intersection_count(&s.truth[i - 1]);
            assert!(
                inter > 0,
                "frames {i}-{} do not overlap, tracking impossible",
                i - 1
            );
        }
    }

    #[test]
    fn feature_brighter_than_background() {
        let s = small();
        let f = s.series.frame(0);
        let m = &s.truth[0];
        let mut inside = 0.0f64;
        let mut n_in = 0.0;
        for (x, y, z) in m.set_coords() {
            inside += *f.get(x, y, z) as f64;
            n_in += 1.0;
        }
        let mean_in = inside / n_in;
        let mean_all = f.mean() as f64;
        assert!(
            mean_in > mean_all + 0.2,
            "inside {mean_in} vs all {mean_all}"
        );
    }

    #[test]
    fn deterministic() {
        let a = turbulent_vortex(Dims3::cube(16), 2);
        let b = turbulent_vortex(Dims3::cube(16), 2);
        assert_eq!(a.series.frame(3), b.series.frame(3));
    }
}
