//! The swirling-flow dataset — Figure 10 — produced by actually running the
//! incompressible fluid solver.
//!
//! The paper tracks a feature "where the feature's data values decrease over
//! time. ... As the data values of the feature decreases with time, it
//! eventually falls below this fixed criterion and no longer tracked"; the
//! adaptive (IATF) criterion keeps following it.
//!
//! Here a Gaussian swirl is released in a viscous fluid and the solver is
//! stepped; the recorded scalar field is vorticity magnitude, which decays
//! physically (viscous + numerical dissipation). Ground truth is the vortex
//! core *relative to the frame's own strength* (`>= core_level * frame max`),
//! which is exactly the feature a scientist keeps tracking as it weakens.

use crate::analytic::gaussian_swirl;
use crate::fluid::{FluidParams, FluidSolver};
use crate::LabeledSeries;
use ifet_volume::{Dims3, Mask3, TimeSeries};

/// Generator parameters.
#[derive(Debug, Clone, Copy)]
pub struct SwirlingFlowParams {
    pub dims: Dims3,
    /// First recorded solver step (the paper's figure starts at t = 23).
    pub t_start: u32,
    /// Last recorded solver step (the paper's figure ends at t = 62).
    pub t_end: u32,
    /// Record every `stride`-th step.
    pub stride: u32,
    /// Initial swirl strength.
    pub strength: f32,
    /// Fraction of the frame's max vorticity defining the core.
    pub core_level: f32,
    /// Fluid solver parameters.
    pub fluid: FluidParams,
}

impl Default for SwirlingFlowParams {
    fn default() -> Self {
        Self {
            dims: Dims3::cube(32),
            t_start: 23,
            t_end: 62,
            stride: 3,
            strength: 1.2,
            core_level: 0.45,
            fluid: FluidParams {
                viscosity: 0.05,
                ..Default::default()
            },
        }
    }
}

/// Paper-flavoured convenience (records solver steps 23..=62).
pub fn swirling_flow(dims: Dims3, _seed: u64) -> LabeledSeries {
    swirling_flow_with(SwirlingFlowParams {
        dims,
        ..Default::default()
    })
}

/// Full-control generator. Runs the solver from rest+swirl for `t_end`
/// steps, recording vorticity magnitude from `t_start` on.
pub fn swirling_flow_with(p: SwirlingFlowParams) -> LabeledSeries {
    assert!(p.t_end > p.t_start && p.stride > 0);
    assert!(p.core_level > 0.0 && p.core_level < 1.0);

    let init = gaussian_swirl(p.dims, p.strength, p.dims.nx as f32 * 0.18);
    let mut solver = FluidSolver::with_velocity(&init, p.fluid);

    let mut frames = Vec::new();
    let mut truth = Vec::new();

    for step in 0..=p.t_end {
        if step >= p.t_start && (step - p.t_start) % p.stride == 0 {
            let vort = solver.vorticity_magnitude();
            let peak = vort.max_value().unwrap_or(0.0);
            let mask = Mask3::threshold(&vort, p.core_level * peak.max(1e-12));
            frames.push((step, vort));
            truth.push(mask);
        }
        if step < p.t_end {
            solver.step();
        }
    }

    let out = LabeledSeries {
        name: "swirling_flow".into(),
        series: TimeSeries::from_frames(frames),
        truth,
    };
    out.validate();
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> LabeledSeries {
        swirling_flow_with(SwirlingFlowParams {
            dims: Dims3::cube(20),
            t_start: 5,
            t_end: 29,
            stride: 6,
            ..Default::default()
        })
    }

    #[test]
    fn shape_and_validation() {
        let s = small();
        assert_eq!(s.series.steps(), &[5, 11, 17, 23, 29]);
        s.validate();
    }

    #[test]
    fn vorticity_decays_below_fixed_threshold() {
        // The Figure 10 premise: a fixed criterion chosen at the first frame
        // eventually exceeds the frame maximum.
        let s = small();
        let max0 = s.series.frame(0).max_value().unwrap();
        let max_last = s.series.frame(s.series.len() - 1).max_value().unwrap();
        assert!(
            max_last < 0.6 * max0,
            "vorticity should decay strongly: {max0} -> {max_last}"
        );
    }

    #[test]
    fn core_persists_relative_to_frame() {
        // The adaptive ground truth never vanishes.
        let s = small();
        for (i, m) in s.truth.iter().enumerate() {
            assert!(m.count() > 0, "core empty at frame {i}");
        }
    }

    #[test]
    fn core_stays_near_domain_center() {
        let s = small();
        let d = s.series.dims();
        let m = s.truth.last().unwrap();
        let (mut cx, mut cy, mut n) = (0.0f64, 0.0f64, 0.0f64);
        for (x, y, _) in m.set_coords() {
            cx += x as f64;
            cy += y as f64;
            n += 1.0;
        }
        cx /= n;
        cy /= n;
        let mid = (d.nx as f64 - 1.0) / 2.0;
        assert!((cx - mid).abs() < d.nx as f64 * 0.2, "cx = {cx}");
        assert!((cy - mid).abs() < d.ny as f64 * 0.2, "cy = {cy}");
    }

    #[test]
    fn consecutive_cores_overlap() {
        let s = small();
        for i in 1..s.truth.len() {
            assert!(
                s.truth[i].intersection_count(&s.truth[i - 1]) > 0,
                "cores must overlap for 4D region-growing to track them"
            );
        }
    }
}
