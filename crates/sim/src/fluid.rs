//! A 3D incompressible flow solver in the stable-fluids style
//! (Stam, SIGGRAPH 1999): semi-Lagrangian advection, implicit viscous
//! diffusion, and pressure projection on a collocated grid.
//!
//! This is the "flow simulation" substrate: the swirling-flow dataset
//! (Figure 10) is produced by actually running this solver so the tracked
//! feature decays for a physical reason (viscous dissipation), not by
//! scripting values.

use ifet_volume::sample::trilinear;
use ifet_volume::{Dims3, ScalarVolume, VectorVolume};

/// Solver configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FluidParams {
    /// Time step.
    pub dt: f32,
    /// Kinematic viscosity (diffusion rate of momentum).
    pub viscosity: f32,
    /// Gauss–Seidel iterations for the diffusion solve.
    pub diffusion_iters: usize,
    /// Gauss–Seidel iterations for the pressure solve.
    pub projection_iters: usize,
}

impl Default for FluidParams {
    fn default() -> Self {
        Self {
            dt: 0.5,
            viscosity: 0.02,
            diffusion_iters: 12,
            projection_iters: 30,
        }
    }
}

/// Incompressible fluid state and stepper.
#[derive(Debug, Clone)]
pub struct FluidSolver {
    dims: Dims3,
    params: FluidParams,
    u: ScalarVolume,
    v: ScalarVolume,
    w: ScalarVolume,
    step_count: usize,
}

impl FluidSolver {
    /// A quiescent fluid.
    pub fn new(dims: Dims3, params: FluidParams) -> Self {
        Self {
            dims,
            params,
            u: ScalarVolume::zeros(dims),
            v: ScalarVolume::zeros(dims),
            w: ScalarVolume::zeros(dims),
            step_count: 0,
        }
    }

    /// Initialize from a velocity field.
    pub fn with_velocity(field: &VectorVolume, params: FluidParams) -> Self {
        let mut s = Self::new(field.dims(), params);
        s.set_velocity(field);
        s
    }

    pub fn dims(&self) -> Dims3 {
        self.dims
    }

    pub fn params(&self) -> FluidParams {
        self.params
    }

    pub fn step_count(&self) -> usize {
        self.step_count
    }

    /// Overwrite the velocity field.
    pub fn set_velocity(&mut self, field: &VectorVolume) {
        assert_eq!(field.dims(), self.dims);
        self.u = field.component(0);
        self.v = field.component(1);
        self.w = field.component(2);
    }

    /// Current velocity as a vector volume.
    pub fn velocity(&self) -> VectorVolume {
        VectorVolume::from_components(&self.u, &self.v, &self.w)
    }

    /// Add `dt * f(x, y, z)` to the velocity (body force).
    pub fn add_force(&mut self, f: impl Fn(usize, usize, usize) -> [f32; 3]) {
        let dt = self.params.dt;
        let d = self.dims;
        for z in 0..d.nz {
            for y in 0..d.ny {
                for x in 0..d.nx {
                    let a = f(x, y, z);
                    *self.u.get_mut(x, y, z) += dt * a[0];
                    *self.v.get_mut(x, y, z) += dt * a[1];
                    *self.w.get_mut(x, y, z) += dt * a[2];
                }
            }
        }
    }

    /// Advance one time step: diffuse → project → advect → project.
    pub fn step(&mut self) {
        let visc = self.params.viscosity;
        if visc > 0.0 {
            let a = visc * self.params.dt;
            self.u = diffuse(&self.u, a, self.params.diffusion_iters);
            self.v = diffuse(&self.v, a, self.params.diffusion_iters);
            self.w = diffuse(&self.w, a, self.params.diffusion_iters);
        }
        self.project();
        let vel = self.velocity();
        self.u = advect(&self.u, &vel, self.params.dt);
        self.v = advect(&self.v, &vel, self.params.dt);
        self.w = advect(&self.w, &vel, self.params.dt);
        self.project();
        self.enforce_no_slip();
        self.step_count += 1;
    }

    /// Passive-scalar transport by the current velocity field.
    pub fn advect_scalar(&self, field: &ScalarVolume) -> ScalarVolume {
        advect(field, &self.velocity(), self.params.dt)
    }

    /// Vorticity magnitude of the current velocity — the scalar the
    /// swirling-flow dataset visualizes.
    pub fn vorticity_magnitude(&self) -> ScalarVolume {
        self.velocity().vorticity_magnitude()
    }

    /// Make the velocity field (approximately) divergence-free.
    fn project(&mut self) {
        let d = self.dims;
        let div = VectorVolume::from_components(&self.u, &self.v, &self.w).divergence();
        let mut p = ScalarVolume::zeros(d);
        // Gauss–Seidel on ∇²p = div.
        for _ in 0..self.params.projection_iters {
            for z in 0..d.nz {
                for y in 0..d.ny {
                    for x in 0..d.nx {
                        let (xi, yi, zi) = (x as i64, y as i64, z as i64);
                        let sum = p.get_clamped(xi - 1, yi, zi)
                            + p.get_clamped(xi + 1, yi, zi)
                            + p.get_clamped(xi, yi - 1, zi)
                            + p.get_clamped(xi, yi + 1, zi)
                            + p.get_clamped(xi, yi, zi - 1)
                            + p.get_clamped(xi, yi, zi + 1);
                        p.set(x, y, z, (sum - div.get(x, y, z)) / 6.0);
                    }
                }
            }
        }
        // Subtract the pressure gradient.
        for z in 0..d.nz {
            for y in 0..d.ny {
                for x in 0..d.nx {
                    let (xi, yi, zi) = (x as i64, y as i64, z as i64);
                    let gx = (p.get_clamped(xi + 1, yi, zi) - p.get_clamped(xi - 1, yi, zi)) * 0.5;
                    let gy = (p.get_clamped(xi, yi + 1, zi) - p.get_clamped(xi, yi - 1, zi)) * 0.5;
                    let gz = (p.get_clamped(xi, yi, zi + 1) - p.get_clamped(xi, yi, zi - 1)) * 0.5;
                    *self.u.get_mut(x, y, z) -= gx;
                    *self.v.get_mut(x, y, z) -= gy;
                    *self.w.get_mut(x, y, z) -= gz;
                }
            }
        }
    }

    /// Zero velocity on the domain boundary (no-slip walls).
    fn enforce_no_slip(&mut self) {
        let d = self.dims;
        let zero = |x: usize, y: usize, z: usize, s: &mut Self| {
            s.u.set(x, y, z, 0.0);
            s.v.set(x, y, z, 0.0);
            s.w.set(x, y, z, 0.0);
        };
        for y in 0..d.ny {
            for x in 0..d.nx {
                zero(x, y, 0, self);
                zero(x, y, d.nz - 1, self);
            }
        }
        for z in 0..d.nz {
            for x in 0..d.nx {
                zero(x, 0, z, self);
                zero(x, d.ny - 1, z, self);
            }
        }
        for z in 0..d.nz {
            for y in 0..d.ny {
                zero(0, y, z, self);
                zero(d.nx - 1, y, z, self);
            }
        }
    }

    /// Vorticity confinement (Fedkiw-style): re-inject small-scale swirl
    /// that the semi-Lagrangian scheme dissipates, scaled by `epsilon`.
    /// Call between steps to keep turbulent structures alive longer.
    pub fn confine_vorticity(&mut self, epsilon: f32) {
        let d = self.dims;
        let curl = self.velocity().curl();
        let mag = curl.magnitude();
        let dt = self.params.dt;
        for z in 1..d.nz.saturating_sub(1) {
            for y in 1..d.ny.saturating_sub(1) {
                for x in 1..d.nx.saturating_sub(1) {
                    // Gradient of |ω|, normalized: points toward stronger swirl.
                    let gx = (mag.get(x + 1, y, z) - mag.get(x - 1, y, z)) * 0.5;
                    let gy = (mag.get(x, y + 1, z) - mag.get(x, y - 1, z)) * 0.5;
                    let gz = (mag.get(x, y, z + 1) - mag.get(x, y, z - 1)) * 0.5;
                    let len = (gx * gx + gy * gy + gz * gz).sqrt();
                    if len < 1e-6 {
                        continue;
                    }
                    let (nx, ny, nz) = (gx / len, gy / len, gz / len);
                    let w = curl.get(x, y, z);
                    // f = ε (N × ω)
                    let fx = epsilon * (ny * w[2] - nz * w[1]);
                    let fy = epsilon * (nz * w[0] - nx * w[2]);
                    let fz = epsilon * (nx * w[1] - ny * w[0]);
                    *self.u.get_mut(x, y, z) += dt * fx;
                    *self.v.get_mut(x, y, z) += dt * fy;
                    *self.w.get_mut(x, y, z) += dt * fz;
                }
            }
        }
    }

    /// Buoyancy force from a scalar (temperature/fuel) field: hot regions
    /// rise along +z — the force driving the combustion-style plumes.
    pub fn add_buoyancy(&mut self, temperature: &ScalarVolume, alpha: f32) {
        assert_eq!(temperature.dims(), self.dims);
        let ambient = temperature.mean();
        let dt = self.params.dt;
        for (i, &t) in temperature.as_slice().iter().enumerate() {
            self.w.as_mut_slice()[i] += dt * alpha * (t - ambient);
        }
    }

    /// RMS divergence of the current velocity (diagnostic).
    pub fn rms_divergence(&self) -> f32 {
        let div = self.velocity().divergence();
        let n = div.len() as f64;
        let ss: f64 = div
            .as_slice()
            .iter()
            .map(|&v| (v as f64) * (v as f64))
            .sum();
        ((ss / n) as f32).sqrt()
    }

    /// Total kinetic energy (diagnostic; decays under viscosity).
    pub fn kinetic_energy(&self) -> f64 {
        self.u
            .as_slice()
            .iter()
            .zip(self.v.as_slice())
            .zip(self.w.as_slice())
            .map(|((&a, &b), &c)| {
                0.5 * (a as f64 * a as f64 + b as f64 * b as f64 + c as f64 * c as f64)
            })
            .sum()
    }
}

/// Implicit diffusion via Gauss–Seidel: solves `(1 + 6a) x - a Σneighbors = x0`.
fn diffuse(x0: &ScalarVolume, a: f32, iters: usize) -> ScalarVolume {
    let d = x0.dims();
    let mut x = x0.clone();
    let denom = 1.0 + 6.0 * a;
    for _ in 0..iters {
        for z in 0..d.nz {
            for y in 0..d.ny {
                for xk in 0..d.nx {
                    let (xi, yi, zi) = (xk as i64, y as i64, z as i64);
                    let sum = x.get_clamped(xi - 1, yi, zi)
                        + x.get_clamped(xi + 1, yi, zi)
                        + x.get_clamped(xi, yi - 1, zi)
                        + x.get_clamped(xi, yi + 1, zi)
                        + x.get_clamped(xi, yi, zi - 1)
                        + x.get_clamped(xi, yi, zi + 1);
                    x.set(xk, y, z, (x0.get(xk, y, z) + a * sum) / denom);
                }
            }
        }
    }
    x
}

/// Semi-Lagrangian advection: backtrace along the velocity and sample.
fn advect(field: &ScalarVolume, vel: &VectorVolume, dt: f32) -> ScalarVolume {
    let d = field.dims();
    ScalarVolume::from_fn(d, |x, y, z| {
        let v = vel.get(x, y, z);
        let px = x as f32 - dt * v[0];
        let py = y as f32 - dt * v[1];
        let pz = z as f32 - dt * v[2];
        trilinear(field, px, py, pz)
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analytic::gaussian_swirl;

    fn small_solver() -> FluidSolver {
        let d = Dims3::cube(20);
        let init = gaussian_swirl(d, 0.8, 4.0);
        FluidSolver::with_velocity(&init, FluidParams::default())
    }

    #[test]
    fn projection_reduces_divergence() {
        let d = Dims3::cube(16);
        // Sinusoidal compressive field: divergence has zero mean, so the
        // Neumann-boundary pressure solve is well-posed.
        let k = 2.0 * std::f32::consts::PI / d.nx as f32;
        let init = VectorVolume::from_fn(d, |x, _, _| [(k * x as f32).sin(), 0.0, 0.0]);
        let mut s = FluidSolver::with_velocity(
            &init,
            FluidParams {
                projection_iters: 80,
                ..Default::default()
            },
        );
        let before = s.rms_divergence();
        s.project();
        let after = s.rms_divergence();
        assert!(
            after < before * 0.5,
            "divergence {before} -> {after} not sufficiently reduced"
        );
    }

    #[test]
    fn quiescent_fluid_stays_quiescent() {
        let mut s = FluidSolver::new(Dims3::cube(8), FluidParams::default());
        s.step();
        s.step();
        assert_eq!(s.kinetic_energy(), 0.0);
    }

    #[test]
    fn viscosity_dissipates_energy() {
        let mut s = small_solver();
        let e0 = s.kinetic_energy();
        for _ in 0..5 {
            s.step();
        }
        let e1 = s.kinetic_energy();
        assert!(e1 < e0, "energy must decay: {e0} -> {e1}");
        assert!(e1 > 0.0, "flow should not die instantly");
    }

    #[test]
    fn vorticity_decays_over_time() {
        let mut s = small_solver();
        let w0 = s.vorticity_magnitude().max_value().unwrap();
        for _ in 0..10 {
            s.step();
        }
        let w1 = s.vorticity_magnitude().max_value().unwrap();
        assert!(w1 < w0 * 0.9, "vorticity {w0} -> {w1} should decay");
    }

    #[test]
    fn step_is_deterministic() {
        let mut a = small_solver();
        let mut b = small_solver();
        for _ in 0..3 {
            a.step();
            b.step();
        }
        assert_eq!(a.velocity(), b.velocity());
    }

    #[test]
    fn advect_scalar_moves_blob_downstream() {
        let d = Dims3::cube(16);
        // Uniform +x wind.
        let wind = VectorVolume::from_fn(d, |_, _, _| [2.0, 0.0, 0.0]);
        let s = FluidSolver::with_velocity(
            &wind,
            FluidParams {
                dt: 1.0,
                ..Default::default()
            },
        );
        let mut blob = ScalarVolume::zeros(d);
        blob.set(5, 8, 8, 1.0);
        let moved = s.advect_scalar(&blob);
        // Backtrace from (7,8,8) lands on (5,8,8).
        assert!(*moved.get(7, 8, 8) > 0.9, "blob should appear at x=7");
        assert!(*moved.get(5, 8, 8) < 0.1, "blob should leave x=5");
    }

    #[test]
    fn diffusion_preserves_constant_field() {
        let v = ScalarVolume::filled(Dims3::cube(8), 2.0);
        let out = diffuse(&v, 0.3, 10);
        for &x in out.as_slice() {
            assert!((x - 2.0).abs() < 1e-4);
        }
    }

    #[test]
    fn diffusion_spreads_impulse() {
        let d = Dims3::cube(9);
        let mut v = ScalarVolume::zeros(d);
        v.set(4, 4, 4, 1.0);
        let out = diffuse(&v, 0.5, 20);
        assert!(*out.get(4, 4, 4) < 1.0);
        assert!(*out.get(5, 4, 4) > 0.0);
    }

    #[test]
    fn no_slip_boundary_after_step() {
        let mut s = small_solver();
        s.step();
        let vel = s.velocity();
        let d = s.dims();
        assert_eq!(vel.get(0, 5, 5), [0.0; 3]);
        assert_eq!(vel.get(d.nx - 1, 5, 5), [0.0; 3]);
        assert_eq!(vel.get(5, 0, 5), [0.0; 3]);
    }

    #[test]
    fn add_force_injects_momentum() {
        let mut s = FluidSolver::new(Dims3::cube(8), FluidParams::default());
        s.add_force(|_, _, _| [1.0, 0.0, 0.0]);
        assert!(s.kinetic_energy() > 0.0);
    }

    #[test]
    fn vorticity_confinement_slows_decay() {
        let run = |epsilon: f32| {
            let mut s = small_solver();
            for _ in 0..8 {
                if epsilon > 0.0 {
                    s.confine_vorticity(epsilon);
                }
                s.step();
            }
            s.vorticity_magnitude().max_value().unwrap()
        };
        let plain = run(0.0);
        let confined = run(0.6);
        assert!(
            confined > plain,
            "confinement should retain vorticity: {confined} vs {plain}"
        );
    }

    #[test]
    fn confinement_on_quiescent_fluid_is_noop() {
        let mut s = FluidSolver::new(Dims3::cube(8), FluidParams::default());
        s.confine_vorticity(1.0);
        assert_eq!(s.kinetic_energy(), 0.0);
    }

    #[test]
    fn buoyancy_lifts_hot_region() {
        let d = Dims3::cube(12);
        let mut s = FluidSolver::new(d, FluidParams::default());
        let temp = ScalarVolume::from_fn(d, |_, _, z| if z < 3 { 2.0 } else { 0.0 });
        s.add_buoyancy(&temp, 1.0);
        // Hot bottom gets upward velocity; cold top gets (relative) downdraft.
        let vel = s.velocity();
        assert!(vel.get(6, 6, 1)[2] > 0.0);
        assert!(vel.get(6, 6, 10)[2] < 0.0);
    }

    #[test]
    fn uniform_temperature_gives_no_buoyancy() {
        let d = Dims3::cube(8);
        let mut s = FluidSolver::new(d, FluidParams::default());
        s.add_buoyancy(&ScalarVolume::filled(d, 5.0), 2.0);
        assert!(s.kinetic_energy() < 1e-12);
    }
}
