//! The argon-bubble ("smoke ring") analog — Figures 2, 3, and 4.
//!
//! The paper's argon bubble dataset shows "a shockwave applied to a bubble of
//! argon gas ... creating a swirling torus-shaped 'smoke ring' along with
//! smaller turbulence structures", and the figures rely on two properties:
//!
//! 1. the ring's **data values drift over time** (a transfer function tuned
//!    on one key frame loses the ring later), and
//! 2. the ring's **cumulative-histogram position stays nearly constant**
//!    (the drift is a global distribution shift, Figure 2).
//!
//! This generator enforces both: every voxel's value is a static structural
//! field pushed through a time-dependent monotone value transform
//! (gain + offset), so the distribution shifts globally while the ring also
//! translates and expands geometrically. Ground truth is the torus interior.

use crate::noise::ValueNoise;
use crate::LabeledSeries;
use ifet_volume::{Dims3, Mask3, ScalarVolume, TimeSeries};

/// Generator parameters.
#[derive(Debug, Clone, Copy)]
pub struct ShockBubbleParams {
    /// Grid size.
    pub dims: Dims3,
    /// Inclusive time-step range, e.g. 195..=255 in the paper's Figure 4.
    pub t_start: u32,
    pub t_end: u32,
    /// Step stride between stored frames.
    pub stride: u32,
    /// Noise seed.
    pub seed: u64,
    /// Amplitude of a non-monotone component added to the global value
    /// drift. Zero gives a linear drift; positive values make the drift
    /// irregular in time — the regime where "the range of the data values
    /// can vary so dramatically" that only the cumulative histogram can
    /// follow it (no smooth interpolation in time works).
    pub drift_wobble: f32,
}

impl Default for ShockBubbleParams {
    fn default() -> Self {
        Self {
            dims: Dims3::cube(64),
            t_start: 195,
            t_end: 255,
            stride: 15,
            seed: 0xA4601,
            drift_wobble: 0.0,
        }
    }
}

impl ShockBubbleParams {
    /// The global value offset at normalized time `tn` (monotone-in-value
    /// transforms only — the offset may move non-monotonically in *time*).
    fn offset(&self, tn: f32) -> f32 {
        0.35 * tn + self.drift_wobble * (tn * 1.7 * std::f32::consts::PI).sin()
    }

    fn gain(&self, tn: f32) -> f32 {
        1.0 + 0.6 * tn
    }

    /// Apply this parameterization's time-dependent value transform.
    pub fn transform(&self, structural: f32, tn: f32) -> f32 {
        structural * self.gain(tn) + self.offset(tn)
    }

    /// The value band occupied by the ring at normalized time `tn`.
    pub fn ring_band(&self, tn: f32) -> (f32, f32) {
        (self.transform(0.42, tn), self.transform(0.95, tn))
    }
}

/// Paper-flavoured convenience: steps 195..=255 at the given grid size.
pub fn shock_bubble(dims: Dims3, seed: u64) -> LabeledSeries {
    shock_bubble_with(ShockBubbleParams {
        dims,
        seed,
        ..Default::default()
    })
}

/// Full-control generator.
pub fn shock_bubble_with(p: ShockBubbleParams) -> LabeledSeries {
    assert!(p.t_end > p.t_start && p.stride > 0);
    let steps: Vec<u32> = (p.t_start..=p.t_end).step_by(p.stride as usize).collect();
    let noise = ValueNoise::new(p.seed);
    let turb_noise = ValueNoise::new(p.seed ^ 0xDEADBEEF);

    let mut frames = Vec::with_capacity(steps.len());
    let mut truth = Vec::with_capacity(steps.len());
    let span = (p.t_end - p.t_start) as f32;

    for &t in &steps {
        let tn = (t - p.t_start) as f32 / span; // 0..1
        let (vol, mask) = frame(&p, tn, &noise, &turb_noise);
        frames.push((t, vol));
        truth.push(mask);
    }

    let out = LabeledSeries {
        name: "shock_bubble".into(),
        series: TimeSeries::from_frames(frames),
        truth,
    };
    out.validate();
    out
}

/// Inverse of the default-parameter transform for a given `tn` (tests).
pub fn invert_transform(v: f32, tn: f32) -> f32 {
    let gain = 1.0 + 0.6 * tn;
    let offset = 0.35 * tn;
    (v - offset) / gain
}

/// Ring geometry at normalized time `tn`: center drifts in +z, major radius
/// grows (the smoke ring expands as it travels).
fn ring_geometry(dims: Dims3, tn: f32) -> ([f32; 3], f32, f32) {
    let cx = (dims.nx as f32 - 1.0) / 2.0;
    let cy = (dims.ny as f32 - 1.0) / 2.0;
    let cz = dims.nz as f32 * (0.30 + 0.35 * tn);
    let major = dims.nx as f32 * (0.18 + 0.08 * tn);
    let minor = dims.nx as f32 * 0.055;
    ([cx, cy, cz], major, minor)
}

/// Distance from a point to the torus centerline circle (the ring's "spine").
/// A point is inside the ring tube when this is `<= minor`.
fn tube_distance(pos: [f32; 3], center: [f32; 3], major: f32) -> f32 {
    let dx = pos[0] - center[0];
    let dy = pos[1] - center[1];
    let dz = pos[2] - center[2];
    let ring_xy = (dx * dx + dy * dy).sqrt() - major;
    (ring_xy * ring_xy + dz * dz).sqrt()
}

fn frame(
    p: &ShockBubbleParams,
    tn: f32,
    noise: &ValueNoise,
    turb_noise: &ValueNoise,
) -> (ScalarVolume, Mask3) {
    let dims = p.dims;
    let (center, major, minor) = ring_geometry(dims, tn);
    let inv = 1.0 / dims.nx as f32;

    let vol = ScalarVolume::from_fn(dims, |x, y, z| {
        let pos = [x as f32, y as f32, z as f32];
        // Ambient medium: low-amplitude fBm around 0.15.
        let ambient = 0.10
            + 0.12
                * noise.fbm(
                    pos[0] * inv * 5.0,
                    pos[1] * inv * 5.0,
                    pos[2] * inv * 5.0,
                    3,
                    0.5,
                );

        // The ring: plateau of height ~0.55 above ambient inside the tube,
        // falling smoothly to zero at the tube wall.
        let q = tube_distance(pos, center, major);
        let ring = 0.55 * plateau(q / minor);

        // Smaller turbulence structures trailing the ring (paper: "smaller
        // turbulence structures"): mid-value fBm filaments below the ring.
        let trail_z = center[2] - dims.nz as f32 * 0.18;
        let trail_falloff = (-(pos[2] - trail_z).powi(2) / (dims.nz as f32 * 0.12).powi(2)).exp();
        let turb = 0.30
            * trail_falloff
            * turb_noise
                .fbm(
                    pos[0] * inv * 9.0,
                    pos[1] * inv * 9.0,
                    pos[2] * inv * 9.0 + tn * 2.0,
                    3,
                    0.55,
                )
                .powi(2);

        let structural = ambient + ring + turb;
        p.transform(structural, tn)
    });

    let mask = Mask3::from_fn(dims, |x, y, z| {
        tube_distance([x as f32, y as f32, z as f32], center, major) <= minor
    });

    (vol, mask)
}

/// Plateau profile: 1 for `s <= 0.6`, smoothstep down to 0 at `s >= 1`.
/// The flat core means most ring voxels share the feature's value band.
fn plateau(s: f32) -> f32 {
    if s <= 0.6 {
        1.0
    } else if s >= 1.0 {
        0.0
    } else {
        let t = 1.0 - (s - 0.6) / 0.4;
        t * t * (3.0 - 2.0 * t)
    }
}

/// The value band occupied by the ring at normalized time `tn` for the
/// *default* parameters (used to script "user key-frame transfer functions"
/// in experiments). For custom parameters use [`ShockBubbleParams::ring_band`].
pub fn ring_value_band(tn: f32) -> (f32, f32) {
    // Structural ring band: ambient ~[0.10, 0.22]; ring core reaches
    // ambient + 0.55. Use the upper part of the plateau.
    ShockBubbleParams::default().ring_band(tn)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ifet_volume::CumulativeHistogram;

    fn small() -> LabeledSeries {
        shock_bubble_with(ShockBubbleParams {
            dims: Dims3::cube(32),
            ..Default::default()
        })
    }

    #[test]
    fn shape_and_labels() {
        let s = small();
        assert_eq!(s.series.len(), 5);
        assert_eq!(s.series.steps(), &[195, 210, 225, 240, 255]);
        s.validate();
    }

    #[test]
    fn ring_truth_nonempty_every_frame() {
        let s = small();
        for (i, m) in s.truth.iter().enumerate() {
            assert!(m.count() > 50, "frame {i} ring too small: {}", m.count());
            // Ring is a minority feature.
            assert!(m.count() < m.dims().len() / 10);
        }
    }

    #[test]
    fn ring_moves_upward_over_time() {
        let s = small();
        let mean_z = |m: &Mask3| {
            let mut acc = 0.0f64;
            let mut n = 0.0f64;
            for (_, _, z) in m.set_coords() {
                acc += z as f64;
                n += 1.0;
            }
            acc / n
        };
        assert!(mean_z(&s.truth[4]) > mean_z(&s.truth[0]) + 2.0);
    }

    #[test]
    fn ring_values_drift_upward() {
        // The property that breaks a static transfer function (Figure 4).
        let s = small();
        let mean_ring_value = |i: usize| {
            let f = s.series.frame(i);
            let m = &s.truth[i];
            let mut acc = 0.0f64;
            let mut n = 0.0f64;
            for (x, y, z) in m.set_coords() {
                acc += *f.get(x, y, z) as f64;
                n += 1.0;
            }
            acc / n
        };
        let v0 = mean_ring_value(0);
        let v4 = mean_ring_value(4);
        assert!(
            v4 > v0 * 1.3,
            "ring value must drift substantially: {v0} -> {v4}"
        );
    }

    #[test]
    fn cumulative_position_is_stable() {
        // The property that makes the IATF work (Figure 2): the ring's
        // cumulative-histogram fraction is nearly constant over time.
        let s = small();
        let fractions: Vec<f32> = (0..s.series.len())
            .map(|i| {
                let f = s.series.frame(i);
                let ch = CumulativeHistogram::of_volume(f, 256);
                let m = &s.truth[i];
                let mut acc = 0.0f64;
                let mut n = 0.0f64;
                for (x, y, z) in m.set_coords() {
                    acc += ch.fraction_at_or_below(*f.get(x, y, z)) as f64;
                    n += 1.0;
                }
                (acc / n) as f32
            })
            .collect();
        let lo = fractions.iter().cloned().fold(f32::INFINITY, f32::min);
        let hi = fractions.iter().cloned().fold(f32::NEG_INFINITY, f32::max);
        assert!(
            hi - lo < 0.08,
            "cumulative fraction drifted too much: {fractions:?}"
        );
        // And the ring sits in the high tail (it is the bright feature).
        assert!(lo > 0.8, "{fractions:?}");
    }

    #[test]
    fn value_band_captures_ring() {
        let s = small();
        for (i, &t) in s.series.steps().iter().enumerate() {
            let tn = (t - 195) as f32 / 60.0;
            let (lo, hi) = ring_value_band(tn);
            let f = s.series.frame(i);
            let band = Mask3::value_band(f, lo, hi);
            let recall = band.recall(&s.truth[i]);
            assert!(recall > 0.5, "frame {i}: band recall {recall}");
        }
    }

    #[test]
    fn static_band_fails_on_late_frames() {
        // The motivating failure: the t=0 band misses most of the late ring.
        let s = small();
        let (lo, hi) = ring_value_band(0.0);
        let late = s.series.frame(4);
        let band = Mask3::value_band(late, lo, hi);
        let recall = band.recall(&s.truth[4]);
        assert!(
            recall < 0.3,
            "static transfer function should lose the drifted ring, recall = {recall}"
        );
    }

    #[test]
    fn transform_is_invertible() {
        for tn in [0.0f32, 0.3, 1.0] {
            let v = ShockBubbleParams::default().transform(0.7, tn);
            assert!((invert_transform(v, tn) - 0.7).abs() < 1e-5);
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let a = shock_bubble(Dims3::cube(16), 3);
        let b = shock_bubble(Dims3::cube(16), 3);
        assert_eq!(a.series.frame(0), b.series.frame(0));
        let c = shock_bubble(Dims3::cube(16), 4);
        assert_ne!(a.series.frame(0), c.series.frame(0));
    }
}
