//! Closed-form velocity fields used as initial conditions and workloads.

use ifet_volume::{Dims3, VectorVolume};
use std::f32::consts::PI;

/// Taylor–Green vortex on `[0, 2π]³` mapped over the grid; a classical
/// divergence-free benchmark field.
pub fn taylor_green(dims: Dims3, amplitude: f32) -> VectorVolume {
    let sx = 2.0 * PI / dims.nx as f32;
    let sy = 2.0 * PI / dims.ny as f32;
    let sz = 2.0 * PI / dims.nz as f32;
    VectorVolume::from_fn(dims, |x, y, z| {
        let (px, py, pz) = (x as f32 * sx, y as f32 * sy, z as f32 * sz);
        [
            amplitude * px.cos() * py.sin() * pz.sin(),
            -amplitude * px.sin() * py.cos() * pz.sin() * 0.5,
            -amplitude * px.sin() * py.sin() * pz.cos() * 0.5,
        ]
    })
}

/// Arnold–Beltrami–Childress flow, a chaotic steady solution of Euler's
/// equations; good for generating tangled vortex structures.
pub fn abc_flow(dims: Dims3, a: f32, b: f32, c: f32) -> VectorVolume {
    let sx = 2.0 * PI / dims.nx as f32;
    let sy = 2.0 * PI / dims.ny as f32;
    let sz = 2.0 * PI / dims.nz as f32;
    VectorVolume::from_fn(dims, |x, y, z| {
        let (px, py, pz) = (x as f32 * sx, y as f32 * sy, z as f32 * sz);
        [
            a * pz.sin() + c * py.cos(),
            b * px.sin() + a * pz.cos(),
            c * py.sin() + b * px.cos(),
        ]
    })
}

/// A temporally-evolving plane jet: streamwise (x) velocity with a
/// `sech²` profile across y, centered mid-domain with half-width `delta`
/// (in voxels). The shear layers at the jet edges are where vorticity
/// concentrates — the structure visualized in the paper's DNS combustion
/// case study.
pub fn plane_jet(dims: Dims3, peak_velocity: f32, delta: f32) -> VectorVolume {
    let yc = (dims.ny as f32 - 1.0) / 2.0;
    VectorVolume::from_fn(dims, |_, y, _| {
        let eta = (y as f32 - yc) / delta;
        let sech = 1.0 / eta.cosh();
        [peak_velocity * sech * sech, 0.0, 0.0]
    })
}

/// A solid-body swirl about the z-axis with Gaussian radial falloff
/// (`core_radius` in voxels), the initial condition for the swirling-flow
/// dataset.
pub fn gaussian_swirl(dims: Dims3, strength: f32, core_radius: f32) -> VectorVolume {
    let cx = (dims.nx as f32 - 1.0) / 2.0;
    let cy = (dims.ny as f32 - 1.0) / 2.0;
    VectorVolume::from_fn(dims, |x, y, _| {
        let dx = x as f32 - cx;
        let dy = y as f32 - cy;
        let r2 = dx * dx + dy * dy;
        let envelope = (-r2 / (2.0 * core_radius * core_radius)).exp();
        [-dy * strength * envelope, dx * strength * envelope, 0.0]
    })
}

/// Uniform advection: every voxel carries the same velocity `vel`. The
/// simplest field with a closed-form pathline ([`uniform_pathline`]) — and,
/// being constant, it is represented *exactly* by trilinear interpolation,
/// so any integrator error against it is pure arithmetic noise.
pub fn uniform_flow(dims: Dims3, vel: [f32; 3]) -> VectorVolume {
    VectorVolume::from_fn(dims, |_, _, _| vel)
}

/// Rigid rotation about the z-axis through the domain center with angular
/// velocity `omega` (radians per unit time): `v = ω × (r − c)`. The field is
/// *linear* in position, so trilinear interpolation reproduces it exactly
/// on the grid interior — which makes the closed-form circular pathline
/// ([`rotation_pathline`]) a clean RK4 convergence oracle.
pub fn rigid_rotation(dims: Dims3, omega: f32) -> VectorVolume {
    let [cx, cy, _] = domain_center(dims);
    VectorVolume::from_fn(dims, |x, y, _| {
        let dx = x as f64 - cx;
        let dy = y as f64 - cy;
        [(-omega as f64 * dy) as f32, (omega as f64 * dx) as f32, 0.0]
    })
}

/// Center of the voxel-index domain `[0, n-1]³` (the axis [`rigid_rotation`]
/// spins about).
pub fn domain_center(dims: Dims3) -> [f64; 3] {
    [
        (dims.nx as f64 - 1.0) / 2.0,
        (dims.ny as f64 - 1.0) / 2.0,
        (dims.nz as f64 - 1.0) / 2.0,
    ]
}

/// Closed-form pathline of [`uniform_flow`]: `x(t) = x₀ + v·t`.
pub fn uniform_pathline(p0: [f64; 3], vel: [f32; 3], t: f64) -> [f64; 3] {
    [
        p0[0] + vel[0] as f64 * t,
        p0[1] + vel[1] as f64 * t,
        p0[2] + vel[2] as f64 * t,
    ]
}

/// Closed-form pathline of [`rigid_rotation`]: the seed rotated by `ω·t`
/// about the z-axis through `center`.
pub fn rotation_pathline(p0: [f64; 3], center: [f64; 3], omega: f32, t: f64) -> [f64; 3] {
    let (dx, dy) = (p0[0] - center[0], p0[1] - center[1]);
    let a = omega as f64 * t;
    let (s, c) = a.sin_cos();
    [
        center[0] + dx * c - dy * s,
        center[1] + dx * s + dy * c,
        p0[2],
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn taylor_green_is_divergence_free_interior() {
        let f = taylor_green(Dims3::cube(24), 1.0);
        let div = f.divergence();
        // Sample interior voxels; central differences of a smooth
        // divergence-free field should be near zero.
        let mut max_abs: f32 = 0.0;
        for z in 4..20 {
            for y in 4..20 {
                for x in 4..20 {
                    max_abs = max_abs.max(div.get(x, y, z).abs());
                }
            }
        }
        assert!(max_abs < 0.05, "max |div| = {max_abs}");
    }

    #[test]
    fn abc_flow_magnitude_bounded() {
        let f = abc_flow(Dims3::cube(16), 1.0, 1.0, 1.0);
        let m = f.magnitude();
        let (_, hi) = m.value_range();
        assert!(hi <= 2.0 * 3.0f32.sqrt() + 1e-3);
        assert!(hi > 0.5);
    }

    #[test]
    fn plane_jet_peaks_at_centerline() {
        let d = Dims3::new(16, 33, 8);
        let f = plane_jet(d, 2.0, 4.0);
        let center = f.get(8, 16, 4);
        assert!((center[0] - 2.0).abs() < 1e-3);
        assert_eq!(center[1], 0.0);
        // Decays away from centerline.
        assert!(f.get(8, 0, 4)[0] < 0.1);
        assert!(f.get(8, 32, 4)[0] < 0.1);
    }

    #[test]
    fn plane_jet_vorticity_concentrates_in_shear_layers() {
        let d = Dims3::new(16, 33, 16);
        let f = plane_jet(d, 2.0, 4.0);
        let w = f.vorticity_magnitude();
        // Vorticity at the centerline is ~0; at the shear layer (~delta away) it's large.
        assert!(w.get(8, 16, 8) < &0.05);
        assert!(w.get(8, 12, 8) > &0.1);
    }

    #[test]
    fn rigid_rotation_matches_cross_product_and_closed_form() {
        let d = Dims3::cube(17);
        let f = rigid_rotation(d, 0.25);
        let c = domain_center(d);
        // v = ω × (r − c): at (c + (4,0,0)) velocity points in +y with |v| = ω·r.
        let v = f.get(12, 8, 8);
        assert!((v[1] - 1.0).abs() < 1e-6 && v[0].abs() < 1e-6);
        // Quarter turn maps (c+(4,0,0)) onto (c+(0,4,0)).
        let p = rotation_pathline(
            [12.0, 8.0, 8.0],
            c,
            0.25,
            std::f64::consts::FRAC_PI_2 / 0.25,
        );
        assert!((p[0] - 8.0).abs() < 1e-9 && (p[1] - 12.0).abs() < 1e-9);
    }

    #[test]
    fn uniform_pathline_is_a_line() {
        let p = uniform_pathline([1.0, 2.0, 3.0], [0.5, -0.25, 0.0], 4.0);
        assert_eq!(p, [3.0, 1.0, 3.0]);
        let f = uniform_flow(Dims3::cube(8), [0.5, -0.25, 0.0]);
        assert_eq!(f.get(3, 4, 5), [0.5, -0.25, 0.0]);
    }

    #[test]
    fn swirl_rotates_about_center() {
        let d = Dims3::cube(17);
        let f = gaussian_swirl(d, 1.0, 4.0);
        // At (cx + r, cy): velocity should point in +y.
        let v = f.get(12, 8, 8);
        assert!(v[1] > 0.0 && v[0].abs() < 1e-4);
        // Vorticity is maximal at the core.
        let w = f.vorticity_magnitude();
        assert!(w.get(8, 8, 8) > w.get(1, 1, 8));
    }
}
