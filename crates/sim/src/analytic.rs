//! Closed-form velocity fields used as initial conditions and workloads.

use ifet_volume::{Dims3, VectorVolume};
use std::f32::consts::PI;

/// Taylor–Green vortex on `[0, 2π]³` mapped over the grid; a classical
/// divergence-free benchmark field.
pub fn taylor_green(dims: Dims3, amplitude: f32) -> VectorVolume {
    let sx = 2.0 * PI / dims.nx as f32;
    let sy = 2.0 * PI / dims.ny as f32;
    let sz = 2.0 * PI / dims.nz as f32;
    VectorVolume::from_fn(dims, |x, y, z| {
        let (px, py, pz) = (x as f32 * sx, y as f32 * sy, z as f32 * sz);
        [
            amplitude * px.cos() * py.sin() * pz.sin(),
            -amplitude * px.sin() * py.cos() * pz.sin() * 0.5,
            -amplitude * px.sin() * py.sin() * pz.cos() * 0.5,
        ]
    })
}

/// Arnold–Beltrami–Childress flow, a chaotic steady solution of Euler's
/// equations; good for generating tangled vortex structures.
pub fn abc_flow(dims: Dims3, a: f32, b: f32, c: f32) -> VectorVolume {
    let sx = 2.0 * PI / dims.nx as f32;
    let sy = 2.0 * PI / dims.ny as f32;
    let sz = 2.0 * PI / dims.nz as f32;
    VectorVolume::from_fn(dims, |x, y, z| {
        let (px, py, pz) = (x as f32 * sx, y as f32 * sy, z as f32 * sz);
        [
            a * pz.sin() + c * py.cos(),
            b * px.sin() + a * pz.cos(),
            c * py.sin() + b * px.cos(),
        ]
    })
}

/// A temporally-evolving plane jet: streamwise (x) velocity with a
/// `sech²` profile across y, centered mid-domain with half-width `delta`
/// (in voxels). The shear layers at the jet edges are where vorticity
/// concentrates — the structure visualized in the paper's DNS combustion
/// case study.
pub fn plane_jet(dims: Dims3, peak_velocity: f32, delta: f32) -> VectorVolume {
    let yc = (dims.ny as f32 - 1.0) / 2.0;
    VectorVolume::from_fn(dims, |_, y, _| {
        let eta = (y as f32 - yc) / delta;
        let sech = 1.0 / eta.cosh();
        [peak_velocity * sech * sech, 0.0, 0.0]
    })
}

/// A solid-body swirl about the z-axis with Gaussian radial falloff
/// (`core_radius` in voxels), the initial condition for the swirling-flow
/// dataset.
pub fn gaussian_swirl(dims: Dims3, strength: f32, core_radius: f32) -> VectorVolume {
    let cx = (dims.nx as f32 - 1.0) / 2.0;
    let cy = (dims.ny as f32 - 1.0) / 2.0;
    VectorVolume::from_fn(dims, |x, y, _| {
        let dx = x as f32 - cx;
        let dy = y as f32 - cy;
        let r2 = dx * dx + dy * dy;
        let envelope = (-r2 / (2.0 * core_radius * core_radius)).exp();
        [-dy * strength * envelope, dx * strength * envelope, 0.0]
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn taylor_green_is_divergence_free_interior() {
        let f = taylor_green(Dims3::cube(24), 1.0);
        let div = f.divergence();
        // Sample interior voxels; central differences of a smooth
        // divergence-free field should be near zero.
        let mut max_abs: f32 = 0.0;
        for z in 4..20 {
            for y in 4..20 {
                for x in 4..20 {
                    max_abs = max_abs.max(div.get(x, y, z).abs());
                }
            }
        }
        assert!(max_abs < 0.05, "max |div| = {max_abs}");
    }

    #[test]
    fn abc_flow_magnitude_bounded() {
        let f = abc_flow(Dims3::cube(16), 1.0, 1.0, 1.0);
        let m = f.magnitude();
        let (_, hi) = m.value_range();
        assert!(hi <= 2.0 * 3.0f32.sqrt() + 1e-3);
        assert!(hi > 0.5);
    }

    #[test]
    fn plane_jet_peaks_at_centerline() {
        let d = Dims3::new(16, 33, 8);
        let f = plane_jet(d, 2.0, 4.0);
        let center = f.get(8, 16, 4);
        assert!((center[0] - 2.0).abs() < 1e-3);
        assert_eq!(center[1], 0.0);
        // Decays away from centerline.
        assert!(f.get(8, 0, 4)[0] < 0.1);
        assert!(f.get(8, 32, 4)[0] < 0.1);
    }

    #[test]
    fn plane_jet_vorticity_concentrates_in_shear_layers() {
        let d = Dims3::new(16, 33, 16);
        let f = plane_jet(d, 2.0, 4.0);
        let w = f.vorticity_magnitude();
        // Vorticity at the centerline is ~0; at the shear layer (~delta away) it's large.
        assert!(w.get(8, 16, 8) < &0.05);
        assert!(w.get(8, 12, 8) > &0.1);
    }

    #[test]
    fn swirl_rotates_about_center() {
        let d = Dims3::cube(17);
        let f = gaussian_swirl(d, 1.0, 4.0);
        // At (cx + r, cy): velocity should point in +y.
        let v = f.get(12, 8, 8);
        assert!(v[1] > 0.0 && v[0].abs() < 1e-4);
        // Vorticity is maximal at the core.
        let w = f.vorticity_magnitude();
        assert!(w.get(8, 8, 8) > w.get(1, 1, 8));
    }
}
