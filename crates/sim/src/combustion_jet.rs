//! The DNS turbulent reacting plane-jet analog — Figure 5.
//!
//! The paper's combustion study visualizes **vorticity magnitude** of a
//! "temporally evolving turbulent reacting plane jet" where "the data range
//! changes significantly over time": a transfer function tuned at t=8 misses
//! most features at t=128 and vice versa.
//!
//! This generator builds a plane-jet velocity field whose shear layers roll
//! up into growing turbulent perturbations, with an amplitude that grows
//! strongly over the sequence, then computes vorticity magnitude. Ground
//! truth is the turbulent mixing layer: the voxels in the top
//! `feature_fraction` of each frame's vorticity distribution (a per-frame
//! definition, exactly the "interesting vortices" a combustion scientist
//! paints).

use crate::analytic::plane_jet;
use crate::noise::ValueNoise;
use crate::LabeledSeries;
use ifet_volume::{
    CumulativeHistogram, Dims3, Mask3, MultiSeries, MultiVolume, ScalarVolume, TimeSeries,
    VectorVolume,
};

/// Generator parameters.
#[derive(Debug, Clone, Copy)]
pub struct CombustionJetParams {
    pub dims: Dims3,
    /// Stored time-step labels (the paper shows t = 8, 36, 64, 92, 128).
    pub t_start: u32,
    pub t_end: u32,
    pub stride: u32,
    /// Fraction of voxels considered "the turbulent feature" per frame.
    pub feature_fraction: f32,
    pub seed: u64,
}

impl Default for CombustionJetParams {
    fn default() -> Self {
        Self {
            dims: Dims3::new(48, 72, 24), // paper aspect 480x720x120, scaled 1/10
            t_start: 8,
            t_end: 128,
            stride: 28,
            feature_fraction: 0.05,
            seed: 0xC0B0,
        }
    }
}

/// Paper-flavoured convenience (t = 8, 36, 64, 92, 128).
pub fn combustion_jet(dims: Dims3, seed: u64) -> LabeledSeries {
    combustion_jet_with(CombustionJetParams {
        dims,
        seed,
        ..Default::default()
    })
}

/// Full-control generator.
pub fn combustion_jet_with(p: CombustionJetParams) -> LabeledSeries {
    assert!(p.t_end > p.t_start && p.stride > 0);
    assert!(p.feature_fraction > 0.0 && p.feature_fraction < 1.0);
    let steps: Vec<u32> = (p.t_start..=p.t_end).step_by(p.stride as usize).collect();
    let span = (p.t_end - p.t_start) as f32;
    let noise = ValueNoise::new(p.seed);

    let mut frames = Vec::with_capacity(steps.len());
    let mut truth = Vec::with_capacity(steps.len());

    for &t in &steps {
        let tn = (t - p.t_start) as f32 / span;
        let vort = vorticity_frame(p.dims, tn, &noise);
        let mask = top_fraction_mask(&vort, p.feature_fraction);
        frames.push((t, vort));
        truth.push(mask);
    }

    let out = LabeledSeries {
        name: "combustion_jet".into(),
        series: TimeSeries::from_frames(frames),
        truth,
    };
    out.validate();
    out
}

/// Velocity field at normalized time `tn` and its vorticity magnitude.
///
/// The jet amplitude grows by ~6x over the sequence (the paper's dramatic
/// "data range change") and the perturbations both strengthen and migrate
/// to finer scales, thickening the mixing layer.
fn vorticity_frame(dims: Dims3, tn: f32, noise: &ValueNoise) -> ScalarVolume {
    let amp = 1.0 + 5.0 * tn;
    let delta = dims.ny as f32 * 0.06;
    let base = plane_jet(dims, amp, delta);

    let yc = (dims.ny as f32 - 1.0) / 2.0;
    let layer_width = delta * (1.5 + 2.5 * tn);
    let pert_amp = amp * (0.15 + 0.45 * tn);
    let inv = 1.0 / dims.nx as f32;
    let freq = 4.0 + 4.0 * tn;

    let vel = VectorVolume::from_fn(dims, |x, y, z| {
        let mut v = base.get(x, y, z);
        // Perturbations localized around the shear layers.
        let eta = (y as f32 - yc) / layer_width;
        let envelope = (-eta * eta).exp();
        let px = x as f32 * inv * freq;
        let py = y as f32 * inv * freq;
        let pz = z as f32 * inv * freq;
        // Three decorrelated noise channels, advected in x over time.
        let n0 = noise.fbm(px + 7.3 + tn * 3.0, py, pz, 3, 0.5) - 0.5;
        let n1 = noise.fbm(px + 19.1 + tn * 3.0, py + 5.5, pz, 3, 0.5) - 0.5;
        let n2 = noise.fbm(px + 31.7 + tn * 3.0, py, pz + 9.2, 3, 0.5) - 0.5;
        v[0] += 2.0 * pert_amp * envelope * n0;
        v[1] += 2.0 * pert_amp * envelope * n1;
        v[2] += 2.0 * pert_amp * envelope * n2;
        v
    });

    vel.vorticity_magnitude()
}

/// Mask of the voxels whose value lies in the top `fraction` of the frame's
/// own distribution.
pub fn top_fraction_mask(vol: &ScalarVolume, fraction: f32) -> Mask3 {
    let ch = CumulativeHistogram::of_volume(vol, 1024);
    let threshold = ch.quantile(1.0 - fraction);
    Mask3::threshold(vol, threshold)
}

/// Mixture fraction at normalized time `tn`: fuel concentrated in the jet
/// core, spreading as the mixing layer grows, stirred by the turbulence.
fn mixture_frame(dims: Dims3, tn: f32, noise: &ValueNoise) -> ScalarVolume {
    let yc = (dims.ny as f32 - 1.0) / 2.0;
    let width = dims.ny as f32 * (0.08 + 0.10 * tn);
    let inv = 1.0 / dims.nx as f32;
    ScalarVolume::from_fn(dims, |x, y, z| {
        let eta = (y as f32 - yc) / width;
        let core = (1.0 / eta.cosh()).powi(2);
        let stir = 0.25
            * (noise.fbm(
                x as f32 * inv * 6.0 + tn * 2.0 + 40.0,
                y as f32 * inv * 6.0,
                z as f32 * inv * 6.0,
                3,
                0.5,
            ) - 0.5);
        (core + stir * core).clamp(0.0, 1.0)
    })
}

/// The multivariate combustion dataset ("a 480×720×120 volume with multiple
/// variables"): per step, the `vorticity_rank` (each voxel's cumulative-
/// histogram fraction within its own frame — the frame-relative quantity
/// the paper's Section 4.2.1 insight calls for, since absolute vorticity
/// drifts ~6× over the run) and the `mixture` fraction. The labeled
/// feature is the **reacting layer** — the joint condition "strongly
/// turbulent AND at the fuel–air interface" that no single variable's
/// transfer function can isolate.
pub fn combustion_jet_multi(p: CombustionJetParams) -> (MultiSeries, Vec<Mask3>) {
    assert!(p.t_end > p.t_start && p.stride > 0);
    let steps: Vec<u32> = (p.t_start..=p.t_end).step_by(p.stride as usize).collect();
    let span = (p.t_end - p.t_start) as f32;
    let noise = ValueNoise::new(p.seed);

    let mut frames = Vec::with_capacity(steps.len());
    let mut truth = Vec::with_capacity(steps.len());
    for &t in &steps {
        let tn = (t - p.t_start) as f32 / span;
        let vort = vorticity_frame(p.dims, tn, &noise);
        let mix = mixture_frame(p.dims, tn, &noise);
        // Frame-relative vorticity: each voxel's rank in its own frame.
        let ch = CumulativeHistogram::of_volume(&vort, 1024);
        let rank = vort.map(|&v| ch.fraction_at_or_below(v));
        // Reacting layer: strongly turbulent AND at the fuel-air interface
        // (mixture neither pure fuel nor pure air).
        let turbulent = top_fraction_mask(&vort, p.feature_fraction * 2.0);
        let mut mask = Mask3::from_fn(p.dims, |x, y, z| {
            let m = *mix.get(x, y, z);
            (0.1..=0.8).contains(&m)
        });
        mask.intersect_with(&turbulent);
        let mut mv = MultiVolume::new(p.dims);
        mv.add("vorticity_rank", rank);
        mv.add("mixture", mix);
        frames.push((t, mv));
        truth.push(mask);
    }
    (MultiSeries::from_frames(frames), truth)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> LabeledSeries {
        combustion_jet_with(CombustionJetParams {
            dims: Dims3::new(32, 48, 16),
            ..Default::default()
        })
    }

    #[test]
    fn shape_and_labels() {
        let s = small();
        assert_eq!(s.series.steps(), &[8, 36, 64, 92, 120]);
        s.validate();
    }

    #[test]
    fn range_grows_dramatically() {
        // The Figure 5 premise: the value range at t_end dwarfs t_start.
        let s = small();
        let (_, hi0) = s.series.frame(0).value_range();
        let (_, hi4) = s.series.frame(s.series.len() - 1).value_range();
        assert!(
            hi4 > hi0 * 2.5,
            "vorticity range must grow strongly: {hi0} -> {hi4}"
        );
    }

    #[test]
    fn truth_is_roughly_requested_fraction() {
        let s = small();
        for m in &s.truth {
            let frac = m.count() as f32 / m.dims().len() as f32;
            assert!(
                (0.01..=0.12).contains(&frac),
                "feature fraction {frac} out of expected band"
            );
        }
    }

    #[test]
    fn early_threshold_fails_late() {
        // A fixed threshold tuned on frame 0 captures far too much at frame 4
        // (everything has drifted above it) — the static-TF failure mode.
        let s = small();
        let ch0 = CumulativeHistogram::of_volume(s.series.frame(0), 1024);
        let thr0 = ch0.quantile(0.95);
        let late = Mask3::threshold(s.series.frame(s.series.len() - 1), thr0);
        let f1 = late.f1(s.truth.last().unwrap());
        assert!(
            f1 < 0.6,
            "static threshold should degrade on late frames, F1 = {f1}"
        );
    }

    #[test]
    fn feature_concentrates_near_shear_layers() {
        let s = small();
        let d = s.series.dims();
        let m = &s.truth[0];
        // Count truth voxels in the central band (mixing layer) vs the far field.
        let yc = d.ny / 2;
        let band = d.ny / 4;
        let mut near = 0usize;
        let mut far = 0usize;
        for (_, y, _) in m.set_coords() {
            if y.abs_diff(yc) <= band {
                near += 1;
            } else {
                far += 1;
            }
        }
        assert!(near > far * 3, "near {near} far {far}");
    }

    #[test]
    fn top_fraction_mask_fraction() {
        let v = ScalarVolume::from_fn(Dims3::cube(10), |x, y, z| (x + 10 * y + 100 * z) as f32);
        let m = top_fraction_mask(&v, 0.1);
        let frac = m.count() as f32 / 1000.0;
        assert!((frac - 0.1).abs() < 0.02, "{frac}");
    }

    #[test]
    fn deterministic() {
        let a = combustion_jet(Dims3::new(16, 24, 8), 1);
        let b = combustion_jet(Dims3::new(16, 24, 8), 1);
        assert_eq!(a.series.frame(2), b.series.frame(2));
    }

    #[test]
    fn multivariate_variant_shapes() {
        let (ms, truth) = combustion_jet_multi(CombustionJetParams {
            dims: Dims3::new(24, 36, 12),
            ..Default::default()
        });
        assert_eq!(ms.len(), truth.len());
        assert_eq!(
            ms.names(),
            &["vorticity_rank".to_string(), "mixture".to_string()]
        );
        for m in &truth {
            assert!(m.count() > 0, "reacting layer must not be empty");
        }
    }

    #[test]
    fn mixture_concentrated_at_jet_core() {
        let (ms, _) = combustion_jet_multi(CombustionJetParams {
            dims: Dims3::new(24, 36, 12),
            ..Default::default()
        });
        let mix = ms.frame(0).var("mixture").unwrap();
        // Centerline is fuel-rich, far field is air.
        assert!(*mix.get(12, 18, 6) > 0.7);
        assert!(*mix.get(12, 1, 6) < 0.1);
    }

    #[test]
    fn reacting_layer_needs_both_variables() {
        // Neither the vorticity band nor the mixture band alone matches the
        // joint truth as well as their intersection does by construction.
        let (ms, truth) = combustion_jet_multi(CombustionJetParams {
            dims: Dims3::new(24, 36, 12),
            ..Default::default()
        });
        let fi = 2;
        let mv = ms.frame(fi);
        let turb = Mask3::threshold(mv.var("vorticity_rank").unwrap(), 0.9);
        let mix_band = Mask3::from_fn(ms.dims(), |x, y, z| {
            let m = *mv.var("mixture").unwrap().get(x, y, z);
            (0.1..=0.8).contains(&m)
        });
        let t = &truth[fi];
        assert!(turb.f1(t) < 0.9, "vorticity alone should not suffice");
        assert!(mix_band.f1(t) < 0.9, "mixture alone should not suffice");
        let mut joint = turb.clone();
        joint.intersect_with(&mix_band);
        assert!(joint.f1(t) > turb.f1(t).max(mix_band.f1(t)));
    }
}
