//! Seeded 3D value noise and fractal Brownian motion.
//!
//! Used to give the procedural datasets plausible turbulent texture while
//! staying fully deterministic (same seed → bit-identical volumes).

use ifet_volume::{Dims3, ScalarVolume};

/// Deterministic 3D value noise on an integer lattice with trilinear
/// interpolation and smoothstep fade.
#[derive(Debug, Clone, Copy)]
pub struct ValueNoise {
    seed: u64,
}

impl ValueNoise {
    pub fn new(seed: u64) -> Self {
        Self { seed }
    }

    /// Hash an integer lattice point to `[0, 1)` (SplitMix64 finalizer).
    fn lattice(&self, x: i64, y: i64, z: i64) -> f32 {
        let mut h = self
            .seed
            .wrapping_add(0x9E3779B97F4A7C15u64.wrapping_mul(x as u64))
            .wrapping_add(0xBF58476D1CE4E5B9u64.wrapping_mul(y as u64))
            .wrapping_add(0x94D049BB133111EBu64.wrapping_mul(z as u64));
        h ^= h >> 30;
        h = h.wrapping_mul(0xBF58476D1CE4E5B9);
        h ^= h >> 27;
        h = h.wrapping_mul(0x94D049BB133111EB);
        h ^= h >> 31;
        (h >> 40) as f32 / (1u64 << 24) as f32
    }

    /// Smoothstep-faded trilinear value noise at a continuous point, in `[0, 1)`.
    pub fn sample(&self, x: f32, y: f32, z: f32) -> f32 {
        let x0 = x.floor();
        let y0 = y.floor();
        let z0 = z.floor();
        let fade = |t: f32| t * t * (3.0 - 2.0 * t);
        let fx = fade(x - x0);
        let fy = fade(y - y0);
        let fz = fade(z - z0);
        let (xi, yi, zi) = (x0 as i64, y0 as i64, z0 as i64);
        let mut c = [0.0f32; 8];
        for (k, item) in c.iter_mut().enumerate() {
            let dx = (k & 1) as i64;
            let dy = ((k >> 1) & 1) as i64;
            let dz = ((k >> 2) & 1) as i64;
            *item = self.lattice(xi + dx, yi + dy, zi + dz);
        }
        let c00 = c[0] + (c[1] - c[0]) * fx;
        let c10 = c[2] + (c[3] - c[2]) * fx;
        let c01 = c[4] + (c[5] - c[4]) * fx;
        let c11 = c[6] + (c[7] - c[6]) * fx;
        let c0 = c00 + (c10 - c00) * fy;
        let c1 = c01 + (c11 - c01) * fy;
        c0 + (c1 - c0) * fz
    }

    /// Fractal Brownian motion: `octaves` layers of value noise with
    /// lacunarity 2 and the given `gain` per octave, normalized to `[0, 1]`.
    pub fn fbm(&self, x: f32, y: f32, z: f32, octaves: usize, gain: f32) -> f32 {
        let mut amp = 1.0f32;
        let mut freq = 1.0f32;
        let mut total = 0.0f32;
        let mut norm = 0.0f32;
        for _ in 0..octaves.max(1) {
            total += amp * self.sample(x * freq, y * freq, z * freq);
            norm += amp;
            amp *= gain;
            freq *= 2.0;
        }
        total / norm
    }

    /// Fill a volume with fBm noise at base frequency `freq` (cycles per
    /// volume edge).
    pub fn fbm_volume(&self, dims: Dims3, freq: f32, octaves: usize, gain: f32) -> ScalarVolume {
        let sx = freq / dims.nx as f32;
        let sy = freq / dims.ny as f32;
        let sz = freq / dims.nz as f32;
        ScalarVolume::from_fn(dims, |x, y, z| {
            self.fbm(x as f32 * sx, y as f32 * sy, z as f32 * sz, octaves, gain)
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let a = ValueNoise::new(7);
        let b = ValueNoise::new(7);
        let c = ValueNoise::new(8);
        assert_eq!(a.sample(1.3, 2.7, 0.5), b.sample(1.3, 2.7, 0.5));
        assert_ne!(a.sample(1.3, 2.7, 0.5), c.sample(1.3, 2.7, 0.5));
    }

    #[test]
    fn range_is_unit_interval() {
        let n = ValueNoise::new(42);
        for i in 0..500 {
            let t = i as f32 * 0.173;
            let v = n.sample(t, t * 0.7, t * 1.3);
            assert!((0.0..=1.0).contains(&v), "{v}");
            let f = n.fbm(t, t * 0.7, t * 1.3, 4, 0.5);
            assert!((0.0..=1.0).contains(&f), "{f}");
        }
    }

    #[test]
    fn continuous_at_lattice_points() {
        let n = ValueNoise::new(9);
        let at = n.sample(3.0, 4.0, 5.0);
        let near = n.sample(3.0001, 4.0001, 5.0001);
        assert!((at - near).abs() < 1e-2);
    }

    #[test]
    fn matches_lattice_at_integers() {
        let n = ValueNoise::new(11);
        assert!((n.sample(2.0, 3.0, 4.0) - n.lattice(2, 3, 4)).abs() < 1e-6);
    }

    #[test]
    fn fbm_volume_has_texture() {
        let n = ValueNoise::new(5);
        let v = n.fbm_volume(Dims3::cube(16), 4.0, 3, 0.5);
        let (lo, hi) = v.value_range();
        assert!(hi - lo > 0.1, "noise should have spread, got [{lo}, {hi}]");
    }

    #[test]
    fn lattice_values_well_distributed() {
        let n = ValueNoise::new(1);
        let mean: f32 = (0..1000)
            .map(|i| n.lattice(i, 2 * i + 1, 3 * i + 7))
            .sum::<f32>()
            / 1000.0;
        assert!((mean - 0.5).abs() < 0.05, "mean {mean}");
    }
}
