//! Time-varying velocity datasets for the Lagrangian particle workload.
//!
//! A velocity series is stored as **three scalar component series** (u, v, w)
//! over one shared grid and step schedule — the same frame files the rest of
//! the pipeline streams, so particle tracing inherits every `FrameSource`
//! flavor (in-core, paged raw/compressed, mmap) without a new storage layer.
//!
//! Three kinds are provided:
//! - [`FlowKind::Uniform`] — constant velocity everywhere; closed-form
//!   pathlines ([`analytic::uniform_pathline`]) and exact under trilinear
//!   interpolation,
//! - [`FlowKind::Rotation`] — steady rigid rotation about the z-axis;
//!   closed-form circular pathlines ([`analytic::rotation_pathline`]), linear
//!   in space so trilinear interpolation is exact — the RK4 convergence
//!   oracle,
//! - [`FlowKind::Swirl`] — a Gaussian-core swirl whose strength *decays over
//!   time*, so temporal interpolation between frames actually matters; the
//!   workload fixture for benchmarks and the surrogate error table.

use crate::analytic;
use ifet_volume::{Dims3, TimeSeries, VectorVolume};

/// Which analytic velocity field a [`flow_series`] call bakes into frames.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FlowKind {
    /// Constant velocity `vel` everywhere, at every time step.
    Uniform { vel: [f32; 3] },
    /// Rigid rotation about the z-axis through the domain center,
    /// `omega` radians per unit time (step labels are the time axis).
    Rotation { omega: f32 },
    /// Gaussian-core swirl (strength `strength`, core `core_radius` voxels)
    /// decaying as `exp(-decay · t_norm)` across the series.
    Swirl {
        strength: f32,
        core_radius: f32,
        decay: f32,
    },
}

impl FlowKind {
    /// Parse a CLI flow name: `uniform`, `rotation`, or `swirl` (with
    /// field-appropriate default parameters).
    pub fn parse(name: &str) -> Option<FlowKind> {
        match name {
            "uniform" => Some(FlowKind::Uniform {
                vel: [0.35, 0.2, -0.1],
            }),
            "rotation" => Some(FlowKind::Rotation { omega: 0.04 }),
            "swirl" => Some(FlowKind::Swirl {
                strength: 0.06,
                core_radius: 6.0,
                decay: 1.2,
            }),
            _ => None,
        }
    }

    /// The velocity field at normalized time `t_norm ∈ [0, 1]`.
    pub fn field(&self, dims: Dims3, t_norm: f32) -> VectorVolume {
        match *self {
            FlowKind::Uniform { vel } => analytic::uniform_flow(dims, vel),
            FlowKind::Rotation { omega } => analytic::rigid_rotation(dims, omega),
            FlowKind::Swirl {
                strength,
                core_radius,
                decay,
            } => analytic::gaussian_swirl(dims, strength * (-decay * t_norm).exp(), core_radius),
        }
    }
}

/// A velocity series split into its three scalar component series. All
/// three share the same dims and step labels by construction.
#[derive(Debug, Clone)]
pub struct FlowSeries {
    pub u: TimeSeries,
    pub v: TimeSeries,
    pub w: TimeSeries,
}

impl FlowSeries {
    /// The component series in axis order, for uniform handling.
    pub fn components(&self) -> [&TimeSeries; 3] {
        [&self.u, &self.v, &self.w]
    }
}

/// Bake `kind` into `frames` frames with step labels `0, stride, 2·stride…`.
/// Steady kinds repeat the same field per frame; `Swirl` decays with
/// normalized time.
pub fn flow_series(kind: FlowKind, dims: Dims3, frames: usize, stride: u32) -> FlowSeries {
    assert!(frames >= 2, "a flow series needs at least two frames");
    let mut comps: [Vec<(u32, ifet_volume::ScalarVolume)>; 3] =
        [Vec::new(), Vec::new(), Vec::new()];
    for k in 0..frames {
        let t_norm = k as f32 / (frames - 1) as f32;
        let field = kind.field(dims, t_norm);
        let step = k as u32 * stride;
        for (axis, out) in comps.iter_mut().enumerate() {
            out.push((step, field.component(axis)));
        }
    }
    let [u, v, w] = comps;
    FlowSeries {
        u: TimeSeries::from_frames(u),
        v: TimeSeries::from_frames(v),
        w: TimeSeries::from_frames(w),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn components_share_dims_and_steps() {
        let f = flow_series(FlowKind::parse("swirl").unwrap(), Dims3::cube(8), 4, 5);
        for c in f.components() {
            assert_eq!(c.dims(), Dims3::cube(8));
            assert_eq!(c.steps(), &[0, 5, 10, 15]);
        }
    }

    #[test]
    fn swirl_decays_over_time() {
        let f = flow_series(
            FlowKind::Swirl {
                strength: 0.1,
                core_radius: 4.0,
                decay: 2.0,
            },
            Dims3::cube(9),
            3,
            1,
        );
        // v-component just right of center: positive, and weaker at the end.
        let early = *f.v.frame(0).get(6, 4, 4);
        let late = *f.v.frame(2).get(6, 4, 4);
        assert!(early > 0.0 && late > 0.0 && late < early * 0.5);
    }

    #[test]
    fn parse_rejects_unknown() {
        assert!(FlowKind::parse("vortex-street").is_none());
        assert!(FlowKind::parse("uniform").is_some());
    }
}
