//! Flow-simulation substrate and procedural 4D datasets.
//!
//! The paper evaluates on five time-varying simulation datasets (argon
//! bubble, DNS turbulent combustion, cosmological reionization, turbulent
//! vortex, swirling flow) that are not redistributable. This crate builds
//! synthetic stand-ins that *enforce the specific properties each figure
//! depends on* — and, unlike the originals, ship per-time-step ground-truth
//! masks so every visual claim in the paper becomes a measurable score.
//!
//! Substrate:
//! - [`fluid::FluidSolver`] — a 3D incompressible stable-fluids solver
//!   (semi-Lagrangian advection, viscous diffusion, pressure projection),
//! - [`noise::ValueNoise`] — seeded 3D value noise / fBm,
//! - [`analytic`] — closed-form velocity fields (Taylor–Green, ABC, plane jet).
//!
//! Datasets (each returns a [`LabeledSeries`]):
//! - [`shock_bubble`](mod@shock_bubble) — Figures 2–4: drifting-value "smoke ring",
//! - [`combustion_jet`](mod@combustion_jet) — Figure 5: vorticity magnitude with growing range,
//! - [`reionization`](mod@reionization) — Figures 7–8: large structures + small "noise" blobs
//!   with overlapping value ranges,
//! - [`turbulent_vortex`](mod@turbulent_vortex) — Figure 9: a moving, deforming, splitting feature,
//! - [`swirling_flow`](mod@swirling_flow) — Figure 10: solver-generated decaying vortex.

pub mod analytic;
pub mod combustion_jet;
pub mod flows;
pub mod fluid;
pub mod noise;
pub mod qg_turbulence;
pub mod reionization;
pub mod shock_bubble;
pub mod swirling_flow;
pub mod turbulent_vortex;

#[cfg(test)]
pub(crate) mod testutil {
    use ifet_volume::Mask3;

    /// 6-connected component count (test-only helper).
    pub fn count_components(m: &Mask3) -> usize {
        let d = m.dims();
        let mut seen = vec![false; d.len()];
        let mut count = 0;
        for start in 0..d.len() {
            if !m.get_linear(start) || seen[start] {
                continue;
            }
            count += 1;
            let mut stack = vec![start];
            seen[start] = true;
            while let Some(i) = stack.pop() {
                let (x, y, z) = d.coords(i);
                for (nx, ny, nz) in d.neighbors6(x, y, z) {
                    let j = d.index(nx, ny, nz);
                    if m.get_linear(j) && !seen[j] {
                        seen[j] = true;
                        stack.push(j);
                    }
                }
            }
        }
        count
    }
}

use ifet_volume::{Mask3, TimeSeries};

/// A time-varying dataset with per-frame ground-truth feature masks.
#[derive(Debug, Clone)]
pub struct LabeledSeries {
    /// Dataset name (for reports).
    pub name: String,
    /// The scalar field over time.
    pub series: TimeSeries,
    /// Ground-truth mask of the feature of interest, one per frame.
    pub truth: Vec<Mask3>,
}

impl LabeledSeries {
    /// Ground-truth mask for a positional frame index.
    pub fn truth_frame(&self, i: usize) -> &Mask3 {
        &self.truth[i]
    }

    /// Ground-truth mask by time-step label.
    pub fn truth_at_step(&self, t: u32) -> Option<&Mask3> {
        self.series.index_of_step(t).map(|i| &self.truth[i])
    }

    /// Sanity invariant: one truth mask per frame, matching dims.
    pub fn validate(&self) {
        assert_eq!(self.truth.len(), self.series.len());
        for m in &self.truth {
            assert_eq!(m.dims(), self.series.dims());
        }
    }
}

pub use combustion_jet::combustion_jet;
pub use qg_turbulence::qg_turbulence;
pub use reionization::reionization;
pub use shock_bubble::shock_bubble;
pub use swirling_flow::swirling_flow;
pub use turbulent_vortex::turbulent_vortex;
