//! Runtime observability: structured tracing spans and per-stage counters.
//!
//! This crate is the registry behind `ifet <cmd> --trace/--profile`. It is
//! deliberately dependency-free (only the offline serde shims, for JSON) and
//! designed around two constraints:
//!
//! 1. **Near-zero cost when disabled.** Every entry point starts with a single
//!    relaxed atomic load; instrumented code reports *aggregates* (one counter
//!    call per slab / frame / round / section, never per voxel), so the
//!    disabled path adds a handful of branches to work units that each cost
//!    milliseconds. The `obs_overhead` bench pins this below 5%.
//!
//! 2. **Deterministic counters across thread counts.** Counter deltas from
//!    worker threads accumulate in thread-local buffers and are merged into
//!    the innermost open span when it closes (u64 addition commutes, so the
//!    merge order does not matter). Counters are sorted by name at span close.
//!    Timings and scheduling-dependent values (scratch-pool hits, barrier
//!    waits) are recorded through [`counter_runtime`] and stripped by
//!    [`Trace::to_stable`], so the *stable* rendering of a trace is
//!    byte-identical across `--threads 1/2/4`.
//!
//! Spans form a tree rooted at the name passed to [`start`]/[`capture`]. Only
//! the thread that called `start` may open spans (the rayon shim runs
//! `ThreadPool::install` closures on the calling thread, so pipeline stages
//! always satisfy this); worker threads contribute counters only. A collected
//! tree serializes to a versioned JSON document (schema
//! [`TRACE_SCHEMA_VERSION`]) with a strict reader that rejects unknown fields,
//! mirroring the persistence layer's corruption tests.

use std::borrow::Cow;
use std::cell::RefCell;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Mutex;
use std::thread::ThreadId;
use std::time::Instant;

use serde::value::Number;
use serde::Value;

/// Version of the emitted trace document. Bump on any field change and
/// extend the schema-stability test in `tests/observability.rs`.
pub const TRACE_SCHEMA_VERSION: u32 = 1;

// ---------------------------------------------------------------------------
// Registry state
// ---------------------------------------------------------------------------

/// Fast-path gate: checked (relaxed) before any other work.
static ENABLED: AtomicBool = AtomicBool::new(false);

/// Capture generation. Thread-local buffers stamp the epoch they were filled
/// under; a stale stamp means the buffer belongs to a previous capture and is
/// discarded instead of merged.
static EPOCH: AtomicU64 = AtomicU64::new(1);

/// Counter deltas flushed by worker threads, awaiting attribution to the
/// innermost open span. `(name, delta, runtime)`.
static PENDING: Mutex<Vec<(&'static str, u64, bool)>> = Mutex::new(Vec::new());

/// The open-span stack. `None` while no capture is active.
static RECORDER: Mutex<Option<Recorder>> = Mutex::new(None);

/// Serializes whole captures (used by `capture`, and so by tests that must
/// not see each other's counters).
static CAPTURE_LOCK: Mutex<()> = Mutex::new(());

struct OpenSpan {
    name: Cow<'static, str>,
    start: Instant,
    counters: Vec<(String, u64, bool)>,
    children: Vec<Span>,
}

impl OpenSpan {
    fn new(name: Cow<'static, str>) -> Self {
        Self {
            name,
            start: Instant::now(),
            counters: Vec::new(),
            children: Vec::new(),
        }
    }

    fn add(&mut self, name: &str, delta: u64, runtime: bool) {
        match self
            .counters
            .iter_mut()
            .find(|(n, _, r)| n == name && *r == runtime)
        {
            Some((_, v, _)) => *v += delta,
            None => self.counters.push((name.to_string(), delta, runtime)),
        }
    }

    fn close(self) -> Span {
        let dur_ns = self.start.elapsed().as_nanos() as u64;
        self.finish_with(dur_ns)
    }

    /// Like `close` but non-consuming (snapshots of still-open spans).
    fn clone_open(&self) -> Span {
        let dur_ns = self.start.elapsed().as_nanos() as u64;
        OpenSpan {
            name: self.name.clone(),
            start: self.start,
            counters: self.counters.clone(),
            children: self.children.clone(),
        }
        .finish_with(dur_ns)
    }

    fn finish_with(mut self, dur_ns: u64) -> Span {
        self.counters
            .sort_by(|a, b| a.0.cmp(&b.0).then(a.2.cmp(&b.2)));
        Span {
            name: self.name.into_owned(),
            dur_ns,
            counters: self
                .counters
                .into_iter()
                .map(|(name, value, runtime)| Counter {
                    name,
                    value,
                    runtime,
                })
                .collect(),
            children: self.children,
        }
    }
}

struct Recorder {
    owner: ThreadId,
    stack: Vec<OpenSpan>,
}

thread_local! {
    static LOCAL: RefCell<LocalBuf> = const {
        RefCell::new(LocalBuf { epoch: 0, entries: Vec::new() })
    };
}

struct LocalBuf {
    epoch: u64,
    entries: Vec<(&'static str, u64, bool)>,
}

fn lock_capture() -> std::sync::MutexGuard<'static, ()> {
    // A panic inside a captured closure poisons the lock; the lock only
    // serializes captures, so recovery is always safe.
    CAPTURE_LOCK.lock().unwrap_or_else(|p| p.into_inner())
}

fn lock_pending() -> std::sync::MutexGuard<'static, Vec<(&'static str, u64, bool)>> {
    PENDING.lock().unwrap_or_else(|p| p.into_inner())
}

fn lock_recorder() -> std::sync::MutexGuard<'static, Option<Recorder>> {
    RECORDER.lock().unwrap_or_else(|p| p.into_inner())
}

fn drain_pending_into_top(rec: &mut Recorder) {
    let mut pending = lock_pending();
    if pending.is_empty() {
        return;
    }
    if let Some(top) = rec.stack.last_mut() {
        for (name, delta, runtime) in pending.drain(..) {
            top.add(name, delta, runtime);
        }
    } else {
        pending.clear();
    }
}

// ---------------------------------------------------------------------------
// Public recording API
// ---------------------------------------------------------------------------

/// Whether a capture is currently active. Use to gate counter *computations*
/// whose value is itself costly (e.g. a mask popcount); plain [`counter`]
/// calls self-gate and do not need this.
#[inline]
pub fn is_enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Begin collecting under a root span. Any capture already active is
/// discarded. Only the calling thread may subsequently open spans.
pub fn start(root: &'static str) {
    let _ = finish();
    EPOCH.fetch_add(1, Ordering::SeqCst);
    lock_pending().clear();
    *lock_recorder() = Some(Recorder {
        owner: std::thread::current().id(),
        stack: vec![OpenSpan::new(Cow::Borrowed(root))],
    });
    ENABLED.store(true, Ordering::SeqCst);
}

/// Stop collecting and return the span tree, or `None` if no capture was
/// active. Spans still open (guards not yet dropped) are closed bottom-up.
pub fn finish() -> Option<Trace> {
    if !is_enabled() {
        return None;
    }
    flush();
    let mut guard = lock_recorder();
    ENABLED.store(false, Ordering::SeqCst);
    let mut rec = guard.take()?;
    drop(guard);
    drain_pending_into_top(&mut rec);
    let mut closed: Option<Span> = None;
    while let Some(open) = rec.stack.pop() {
        let mut span = open.close();
        if let Some(child) = closed.take() {
            span.children.push(child);
        }
        closed = Some(span);
    }
    closed.map(|root| Trace {
        schema: TRACE_SCHEMA_VERSION,
        mode: TraceMode::Full,
        root,
    })
}

/// Run `f` under a fresh capture rooted at `root` and return its result with
/// the collected trace. Captures are globally serialized, so concurrently
/// running tests cannot pollute each other's counters. If `f` panics, the
/// capture is torn down before the panic propagates.
pub fn capture<R>(root: &'static str, f: impl FnOnce() -> R) -> (R, Trace) {
    let _serialize = lock_capture();
    struct TearDown;
    impl Drop for TearDown {
        fn drop(&mut self) {
            let _ = finish();
        }
    }
    let armed = TearDown;
    start(root);
    let result = f();
    std::mem::forget(armed);
    let trace = finish().expect("capture was active");
    (result, trace)
}

/// Open a timed span. The returned guard closes it on drop. Inert (and
/// branch-cheap) when no capture is active or when called from a thread other
/// than the one that called [`start`].
#[inline]
pub fn span(name: &'static str) -> SpanGuard {
    if !is_enabled() {
        return SpanGuard { active: false };
    }
    span_open(Cow::Borrowed(name))
}

/// [`span`] with a runtime-built name (e.g. a per-section label). Prefer
/// [`span`] anywhere the name is known at compile time.
#[inline]
pub fn span_dyn(name: String) -> SpanGuard {
    if !is_enabled() {
        return SpanGuard { active: false };
    }
    span_open(Cow::Owned(name))
}

fn span_open(name: Cow<'static, str>) -> SpanGuard {
    flush();
    let mut guard = lock_recorder();
    let Some(rec) = guard.as_mut() else {
        return SpanGuard { active: false };
    };
    if rec.owner != std::thread::current().id() {
        return SpanGuard { active: false };
    }
    drain_pending_into_top(rec);
    rec.stack.push(OpenSpan::new(name));
    SpanGuard { active: true }
}

/// Closes its span on drop. Obtain via [`span`]/[`span_dyn`] or the
/// [`obs_span!`] macro.
#[must_use = "dropping the guard immediately closes the span"]
pub struct SpanGuard {
    active: bool,
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        if !self.active || !is_enabled() {
            // `finish()` may have already closed everything this guard covers.
            return;
        }
        flush();
        let mut guard = lock_recorder();
        let Some(rec) = guard.as_mut() else { return };
        drain_pending_into_top(rec);
        // The root span belongs to `finish()`; stack depth 1 means this guard
        // outlived the capture that opened it.
        if rec.stack.len() <= 1 {
            return;
        }
        let span = rec.stack.pop().expect("stack depth checked above").close();
        rec.stack
            .last_mut()
            .expect("stack depth checked above")
            .children
            .push(span);
    }
}

/// Open a span for the rest of the enclosing scope:
/// `obs_span!("track.round");`
#[macro_export]
macro_rules! obs_span {
    ($name:literal) => {
        let _obs_span_guard = $crate::span($name);
    };
}

/// Add to a **deterministic** counter: its value must depend only on inputs,
/// never on scheduling. Deterministic counters survive
/// [`Trace::to_stable`] and are pinned byte-identical across thread counts by
/// the observability tests. Buffered thread-locally; merged when the
/// innermost open span closes (worker threads must [`flush`] at work-unit
/// end, most easily via [`flush_guard`]).
#[inline]
pub fn counter(name: &'static str, delta: u64) {
    if !is_enabled() {
        return;
    }
    add_local(name, delta, false);
}

/// Add to a **runtime** counter: scheduling-dependent values (pool hits,
/// wait times). Stripped by [`Trace::to_stable`].
#[inline]
pub fn counter_runtime(name: &'static str, delta: u64) {
    if !is_enabled() {
        return;
    }
    add_local(name, delta, true);
}

/// [`counter_runtime`] with a runtime-built name (e.g. a per-tenant label
/// like `serve.tenant.3.rejected`). Names are interned for the process
/// lifetime, so use bounded name sets (tenant ids, shard ids) — not
/// unbounded ones (request ids). Prefer [`counter_runtime`] anywhere the
/// name is known at compile time.
pub fn counter_runtime_dyn(name: String, delta: u64) {
    if !is_enabled() {
        return;
    }
    add_local(intern(name), delta, true);
}

/// Process-lifetime intern table backing [`counter_runtime_dyn`]: the
/// counter buffers key by `&'static str`, so each distinct dynamic name is
/// leaked exactly once and reused thereafter.
fn intern(name: String) -> &'static str {
    static INTERNED: Mutex<Vec<&'static str>> = Mutex::new(Vec::new());
    let mut table = INTERNED.lock().unwrap_or_else(|e| e.into_inner());
    match table.iter().find(|n| **n == name) {
        Some(n) => n,
        None => {
            let leaked: &'static str = Box::leak(name.into_boxed_str());
            table.push(leaked);
            leaked
        }
    }
}

fn add_local(name: &'static str, delta: u64, runtime: bool) {
    let epoch = EPOCH.load(Ordering::SeqCst);
    LOCAL.with(|buf| {
        let mut buf = buf.borrow_mut();
        if buf.epoch != epoch {
            buf.epoch = epoch;
            buf.entries.clear();
        }
        match buf
            .entries
            .iter_mut()
            .find(|(n, _, r)| *n == name && *r == runtime)
        {
            Some((_, v, _)) => *v += delta,
            None => buf.entries.push((name, delta, runtime)),
        }
    });
}

/// Publish this thread's buffered counters for merging into the current
/// span. Worker threads call this (or drop a [`flush_guard`]) at the end of
/// each parallel work unit; span guards flush the owner thread automatically.
pub fn flush() {
    if !is_enabled() {
        return;
    }
    let epoch = EPOCH.load(Ordering::SeqCst);
    LOCAL.with(|buf| {
        let mut buf = buf.borrow_mut();
        if buf.epoch != epoch || buf.entries.is_empty() {
            return;
        }
        lock_pending().extend(buf.entries.drain(..));
    });
}

/// Calls [`flush`] on drop. Declare first in a parallel closure so it runs
/// after everything else in the closure (drop order is reverse declaration):
/// `let _flush = obs::flush_guard();`
pub fn flush_guard() -> FlushGuard {
    FlushGuard
}

pub struct FlushGuard;

impl Drop for FlushGuard {
    fn drop(&mut self) {
        flush();
    }
}

/// Non-destructive snapshot of the capture so far: still-open spans appear
/// with their elapsed-so-far durations. Buffered counters are attributed to
/// the innermost open span (where they would land anyway). `None` if no
/// capture is active.
pub fn snapshot() -> Option<Trace> {
    if !is_enabled() {
        return None;
    }
    flush();
    let mut guard = lock_recorder();
    let rec = guard.as_mut()?;
    drain_pending_into_top(rec);
    let mut closed: Option<Span> = None;
    for open in rec.stack.iter().rev() {
        let mut span = open.clone_open();
        if let Some(child) = closed.take() {
            span.children.push(child);
        }
        closed = Some(span);
    }
    closed.map(|root| Trace {
        schema: TRACE_SCHEMA_VERSION,
        mode: TraceMode::Full,
        root,
    })
}

/// Fixed-point helper for recording a non-negative float (e.g. a loss) as a
/// deterministic integer counter, in micro-units.
#[inline]
pub fn micros_f32(v: f32) -> u64 {
    if v.is_finite() && v > 0.0 {
        (v as f64 * 1e6).round() as u64
    } else {
        0
    }
}

// ---------------------------------------------------------------------------
// Trace model
// ---------------------------------------------------------------------------

/// Rendering/redaction mode recorded in the trace document.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceMode {
    /// Everything: durations and runtime counters included.
    Full,
    /// Deterministic subset: durations zeroed, runtime counters stripped.
    /// Byte-identical across thread counts.
    Stable,
}

impl TraceMode {
    pub fn as_str(&self) -> &'static str {
        match self {
            TraceMode::Full => "full",
            TraceMode::Stable => "stable",
        }
    }

    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "full" => Some(TraceMode::Full),
            "stable" => Some(TraceMode::Stable),
            _ => None,
        }
    }
}

/// One counter on a span.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Counter {
    pub name: String,
    pub value: u64,
    /// Scheduling-dependent (see [`counter_runtime`]); stripped in stable mode.
    pub runtime: bool,
}

/// One node of the span tree.
#[derive(Debug, Clone, PartialEq)]
pub struct Span {
    pub name: String,
    pub dur_ns: u64,
    /// Sorted by name (then runtime flag) at close.
    pub counters: Vec<Counter>,
    pub children: Vec<Span>,
}

impl Span {
    /// Counter value by name, searching this span only.
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters
            .iter()
            .find(|c| c.name == name)
            .map(|c| c.value)
    }

    /// Depth-first search for the first descendant (or self) with `name`.
    pub fn find(&self, name: &str) -> Option<&Span> {
        if self.name == name {
            return Some(self);
        }
        self.children.iter().find_map(|c| c.find(name))
    }

    /// All spans (self and descendants) with `name`, in depth-first order.
    pub fn find_all<'a>(&'a self, name: &str, out: &mut Vec<&'a Span>) {
        if self.name == name {
            out.push(self);
        }
        for c in &self.children {
            c.find_all(name, out);
        }
    }
}

/// A complete versioned trace document.
#[derive(Debug, Clone, PartialEq)]
pub struct Trace {
    pub schema: u32,
    pub mode: TraceMode,
    pub root: Span,
}

impl Trace {
    /// Deterministic redaction: durations zeroed, runtime counters removed.
    /// The stable rendering of a trace is the part pinned across thread
    /// counts by tests and embedded in `.ifet` artifacts.
    pub fn to_stable(&self) -> Trace {
        fn redact(s: &Span) -> Span {
            Span {
                name: s.name.clone(),
                dur_ns: 0,
                counters: s.counters.iter().filter(|c| !c.runtime).cloned().collect(),
                children: s.children.iter().map(redact).collect(),
            }
        }
        Trace {
            schema: self.schema,
            mode: TraceMode::Stable,
            root: redact(&self.root),
        }
    }

    fn span_to_value(s: &Span) -> Value {
        Value::Object(vec![
            ("name".to_string(), Value::String(s.name.clone())),
            ("dur_ns".to_string(), Value::Number(Number::U(s.dur_ns))),
            (
                "counters".to_string(),
                Value::Array(
                    s.counters
                        .iter()
                        .map(|c| {
                            Value::Object(vec![
                                ("name".to_string(), Value::String(c.name.clone())),
                                ("value".to_string(), Value::Number(Number::U(c.value))),
                                ("runtime".to_string(), Value::Bool(c.runtime)),
                            ])
                        })
                        .collect(),
                ),
            ),
            (
                "children".to_string(),
                Value::Array(s.children.iter().map(Self::span_to_value).collect()),
            ),
        ])
    }

    pub fn to_value(&self) -> Value {
        Value::Object(vec![
            (
                "trace_schema".to_string(),
                Value::Number(Number::U(self.schema as u64)),
            ),
            (
                "mode".to_string(),
                Value::String(self.mode.as_str().to_string()),
            ),
            ("root".to_string(), Self::span_to_value(&self.root)),
        ])
    }

    /// Compact JSON. Deterministic: object fields are emitted in fixed order
    /// and counters were sorted at span close.
    pub fn to_json(&self) -> String {
        serde_json::write_compact(&self.to_value())
    }

    /// Indented JSON for `--trace` output files.
    pub fn to_json_pretty(&self) -> String {
        serde_json::write_pretty(&self.to_value())
    }

    /// Strict parser: rejects unknown or missing fields, wrong types, and
    /// documents from a newer schema. This is the fixture reader used by the
    /// schema-stability test — any field change must bump
    /// [`TRACE_SCHEMA_VERSION`] and be reflected here.
    pub fn from_json(text: &str) -> Result<Trace, TraceError> {
        let value =
            serde_json::parse_value(text).map_err(|e| TraceError(format!("bad JSON: {e}")))?;
        let pairs = expect_keys(&value, "trace", &["trace_schema", "mode", "root"])?;
        let schema = pairs[0]
            .1
            .as_u64()
            .ok_or_else(|| TraceError("trace_schema must be an unsigned integer".into()))?;
        if schema > TRACE_SCHEMA_VERSION as u64 {
            return Err(TraceError(format!(
                "trace schema {schema} is newer than supported {TRACE_SCHEMA_VERSION}"
            )));
        }
        let mode_str = pairs[1]
            .1
            .as_str()
            .ok_or_else(|| TraceError("mode must be a string".into()))?;
        let mode = TraceMode::parse(mode_str)
            .ok_or_else(|| TraceError(format!("unknown trace mode `{mode_str}`")))?;
        let root = Self::span_from_value(&pairs[2].1)?;
        Ok(Trace {
            schema: schema as u32,
            mode,
            root,
        })
    }

    fn span_from_value(v: &Value) -> Result<Span, TraceError> {
        let pairs = expect_keys(v, "span", &["name", "dur_ns", "counters", "children"])?;
        let name = pairs[0]
            .1
            .as_str()
            .ok_or_else(|| TraceError("span name must be a string".into()))?
            .to_string();
        let dur_ns = pairs[1]
            .1
            .as_u64()
            .ok_or_else(|| TraceError("dur_ns must be an unsigned integer".into()))?;
        let counters = pairs[2]
            .1
            .as_array()
            .ok_or_else(|| TraceError("counters must be an array".into()))?
            .iter()
            .map(Self::counter_from_value)
            .collect::<Result<Vec<_>, _>>()?;
        let children = pairs[3]
            .1
            .as_array()
            .ok_or_else(|| TraceError("children must be an array".into()))?
            .iter()
            .map(Self::span_from_value)
            .collect::<Result<Vec<_>, _>>()?;
        Ok(Span {
            name,
            dur_ns,
            counters,
            children,
        })
    }

    fn counter_from_value(v: &Value) -> Result<Counter, TraceError> {
        let pairs = expect_keys(v, "counter", &["name", "value", "runtime"])?;
        Ok(Counter {
            name: pairs[0]
                .1
                .as_str()
                .ok_or_else(|| TraceError("counter name must be a string".into()))?
                .to_string(),
            value: pairs[1]
                .1
                .as_u64()
                .ok_or_else(|| TraceError("counter value must be an unsigned integer".into()))?,
            runtime: pairs[2]
                .1
                .as_bool()
                .ok_or_else(|| TraceError("counter runtime must be a bool".into()))?,
        })
    }
}

/// Require `v` to be an object with exactly `keys`, in exactly that order.
/// Field order is part of the schema (the emitter is deterministic), so the
/// strict reader checks it too — reordering is an unannounced schema change.
fn expect_keys<'a>(
    v: &'a Value,
    what: &str,
    keys: &[&str],
) -> Result<&'a [(String, Value)], TraceError> {
    let pairs = v
        .as_object()
        .ok_or_else(|| TraceError(format!("{what} must be an object")))?;
    if pairs.len() != keys.len() {
        let got: Vec<&str> = pairs.iter().map(|(k, _)| k.as_str()).collect();
        return Err(TraceError(format!(
            "{what} must have exactly fields {keys:?}, got {got:?}"
        )));
    }
    for (i, key) in keys.iter().enumerate() {
        if pairs[i].0 != *key {
            return Err(TraceError(format!(
                "{what} field {i} must be `{key}`, got `{}`",
                pairs[i].0
            )));
        }
    }
    Ok(pairs)
}

/// Error from the strict trace reader.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceError(pub String);

impl std::fmt::Display for TraceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "trace error: {}", self.0)
    }
}

impl std::error::Error for TraceError {}

// ---------------------------------------------------------------------------
// Profile summary
// ---------------------------------------------------------------------------

/// Aggregate the span tree by name into a `--profile` table: one row per
/// span name with call count, total/mean duration, and summed counters.
pub fn profile_table(trace: &Trace) -> String {
    struct Row {
        calls: u64,
        total_ns: u64,
        counters: Vec<(String, u64)>,
    }
    fn walk(s: &Span, rows: &mut Vec<(String, Row)>) {
        match rows.iter_mut().find(|(n, _)| *n == s.name) {
            Some((_, row)) => {
                row.calls += 1;
                row.total_ns += s.dur_ns;
                for c in &s.counters {
                    match row.counters.iter_mut().find(|(n, _)| *n == c.name) {
                        Some((_, v)) => *v += c.value,
                        None => row.counters.push((c.name.clone(), c.value)),
                    }
                }
            }
            None => rows.push((
                s.name.clone(),
                Row {
                    calls: 1,
                    total_ns: s.dur_ns,
                    counters: s
                        .counters
                        .iter()
                        .map(|c| (c.name.clone(), c.value))
                        .collect(),
                },
            )),
        }
        for c in &s.children {
            walk(c, rows);
        }
    }
    let mut rows: Vec<(String, Row)> = Vec::new();
    walk(&trace.root, &mut rows);

    let mut out = String::new();
    out.push_str(&format!(
        "{:<28} {:>7} {:>12} {:>12}  counters\n",
        "span", "calls", "total_ms", "mean_us"
    ));
    for (name, row) in &rows {
        let total_ms = row.total_ns as f64 / 1e6;
        let mean_us = row.total_ns as f64 / row.calls as f64 / 1e3;
        let counters = row
            .counters
            .iter()
            .map(|(n, v)| format!("{n}={v}"))
            .collect::<Vec<_>>()
            .join(" ");
        out.push_str(&format!(
            "{name:<28} {:>7} {total_ms:>12.3} {mean_us:>12.1}  {counters}\n",
            row.calls
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_calls_are_inert() {
        assert!(!is_enabled());
        counter("nope", 1);
        counter_runtime("nope", 1);
        flush();
        let _g = span("nope");
        drop(_g);
        assert!(finish().is_none());
        assert!(snapshot().is_none());
    }

    #[test]
    fn capture_builds_nested_tree_with_merged_counters() {
        let ((), trace) = capture("root", || {
            counter("top", 1);
            {
                let _s = span("stage");
                counter("work", 2);
                counter("work", 3);
                counter_runtime("hits", 7);
                {
                    let _inner = span("inner");
                    counter("deep", 1);
                }
            }
            counter("top", 1);
        });
        assert_eq!(trace.schema, TRACE_SCHEMA_VERSION);
        assert_eq!(trace.root.name, "root");
        assert_eq!(trace.root.counter("top"), Some(2));
        let stage = trace.root.find("stage").expect("stage span");
        assert_eq!(stage.counter("work"), Some(5));
        assert_eq!(stage.counter("hits"), Some(7));
        assert_eq!(stage.children.len(), 1);
        assert_eq!(stage.children[0].name, "inner");
        assert_eq!(stage.children[0].counter("deep"), Some(1));
        assert!(!is_enabled());
    }

    #[test]
    fn worker_thread_counters_merge_into_enclosing_span() {
        let ((), trace) = capture("root", || {
            let _s = span("par");
            std::thread::scope(|scope| {
                for _ in 0..4 {
                    scope.spawn(|| {
                        let _flush = flush_guard();
                        counter("units", 1);
                    });
                }
            });
        });
        let par = trace.root.find("par").expect("par span");
        assert_eq!(par.counter("units"), Some(4));
    }

    #[test]
    fn worker_threads_cannot_open_spans() {
        let ((), trace) = capture("root", || {
            std::thread::scope(|scope| {
                scope.spawn(|| {
                    let _s = span("worker-span");
                    counter("c", 1);
                    flush();
                });
            });
        });
        assert!(trace.root.find("worker-span").is_none());
        // The counter still lands (on the root).
        assert_eq!(trace.root.counter("c"), Some(1));
    }

    #[test]
    fn stable_mode_strips_runtime_and_timing() {
        let ((), trace) = capture("root", || {
            let _s = span("stage");
            counter("det", 3);
            counter_runtime("sched", 9);
        });
        let stable = trace.to_stable();
        assert_eq!(stable.mode, TraceMode::Stable);
        assert_eq!(stable.root.dur_ns, 0);
        let stage = stable.root.find("stage").unwrap();
        assert_eq!(stage.dur_ns, 0);
        assert_eq!(stage.counter("det"), Some(3));
        assert_eq!(stage.counter("sched"), None);
        // Full trace keeps both.
        let full_stage = trace.root.find("stage").unwrap();
        assert_eq!(full_stage.counter("sched"), Some(9));
    }

    #[test]
    fn json_round_trip_and_strictness() {
        let ((), trace) = capture("root", || {
            let _s = span("stage");
            counter("b", 1);
            counter("a", 2);
            counter_runtime("a", 3);
        });
        let text = trace.to_json_pretty();
        let back = Trace::from_json(&text).expect("round trip");
        assert_eq!(back, trace);

        // Compact form round-trips too.
        assert_eq!(Trace::from_json(&trace.to_json()).unwrap(), trace);

        // Counters sorted: deterministic ones by name, runtime after its twin.
        let stage = back.root.find("stage").unwrap();
        let order: Vec<(&str, bool)> = stage
            .counters
            .iter()
            .map(|c| (c.name.as_str(), c.runtime))
            .collect();
        assert_eq!(order, vec![("a", false), ("a", true), ("b", false)]);
    }

    #[test]
    fn reader_rejects_unknown_fields_and_newer_schema() {
        let good = r#"{"trace_schema":1,"mode":"stable","root":{"name":"r","dur_ns":0,"counters":[],"children":[]}}"#;
        assert!(Trace::from_json(good).is_ok());

        let extra_top = r#"{"trace_schema":1,"mode":"stable","root":{"name":"r","dur_ns":0,"counters":[],"children":[]},"extra":1}"#;
        assert!(Trace::from_json(extra_top).is_err());

        let extra_span = r#"{"trace_schema":1,"mode":"stable","root":{"name":"r","dur_ns":0,"counters":[],"children":[],"self_ns":0}}"#;
        assert!(Trace::from_json(extra_span).is_err());

        let missing =
            r#"{"trace_schema":1,"root":{"name":"r","dur_ns":0,"counters":[],"children":[]}}"#;
        assert!(Trace::from_json(missing).is_err());

        let newer = r#"{"trace_schema":2,"mode":"stable","root":{"name":"r","dur_ns":0,"counters":[],"children":[]}}"#;
        assert!(Trace::from_json(newer).is_err());

        let bad_mode = r#"{"trace_schema":1,"mode":"verbose","root":{"name":"r","dur_ns":0,"counters":[],"children":[]}}"#;
        assert!(Trace::from_json(bad_mode).is_err());
    }

    #[test]
    fn snapshot_is_non_destructive() {
        let ((), trace) = capture("root", || {
            counter("before", 1);
            let snap = snapshot().expect("active capture");
            assert_eq!(snap.root.counter("before"), Some(1));
            counter("after", 1);
        });
        assert_eq!(trace.root.counter("before"), Some(1));
        assert_eq!(trace.root.counter("after"), Some(1));
    }

    #[test]
    fn profile_table_aggregates_by_name() {
        let ((), trace) = capture("root", || {
            for _ in 0..3 {
                let _s = span("round");
                counter("frontier", 10);
            }
        });
        let table = profile_table(&trace);
        assert!(table.contains("round"));
        assert!(table.contains("frontier=30"));
        let round_line = table.lines().find(|l| l.starts_with("round")).unwrap();
        assert!(round_line.contains("      3 "), "3 calls: {round_line}");
    }

    #[test]
    fn micros_helper() {
        assert_eq!(micros_f32(0.25), 250_000);
        assert_eq!(micros_f32(0.0), 0);
        assert_eq!(micros_f32(f32::NAN), 0);
        assert_eq!(micros_f32(-1.0), 0);
    }
}
