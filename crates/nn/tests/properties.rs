//! Property-based tests for the neural network.

use ifet_nn::mlp::Scratch;
use ifet_nn::{Activation, Mlp, Normalizer, TrainParams, Trainer, TrainingSet};
use proptest::prelude::*;

fn small_input() -> impl Strategy<Value = Vec<f32>> {
    proptest::collection::vec(-2.0f32..2.0, 3)
}

proptest! {
    #[test]
    fn sigmoid_network_output_in_unit_interval(input in small_input(), seed in any::<u64>()) {
        let net = Mlp::three_layer(3, 8, seed);
        let y = net.forward(&input);
        prop_assert!(y[0] > 0.0 && y[0] < 1.0, "{}", y[0]);
    }

    #[test]
    fn forward_is_pure(input in small_input(), seed in any::<u64>()) {
        let net = Mlp::three_layer(3, 5, seed);
        let a = net.forward(&input);
        let b = net.forward(&input);
        prop_assert_eq!(a, b);
    }

    #[test]
    fn scratch_reuse_equals_fresh(input in small_input(), seed in any::<u64>()) {
        let net = Mlp::new(&[3, 6, 4, 2], Activation::Tanh, Activation::Identity, seed).unwrap();
        let fresh = net.forward(&input);
        let mut scratch = Scratch::for_net(&net);
        // Warm the scratch with a different input first.
        let _ = net.forward_scratch(&[9.0, -9.0, 0.5], &mut scratch);
        let reused = net.forward_scratch(&input, &mut scratch).to_vec();
        prop_assert_eq!(fresh, reused);
    }

    #[test]
    fn json_roundtrip_preserves_behaviour(input in small_input(), seed in any::<u64>()) {
        let net = Mlp::three_layer(3, 7, seed);
        let restored = Mlp::from_json(&net.to_json()).unwrap();
        prop_assert_eq!(net.forward(&input), restored.forward(&input));
    }

    #[test]
    fn one_gradient_step_reduces_sample_error(seed in any::<u64>(),
                                              target in 0.1f32..0.9) {
        // For a single training sample, repeated gradient steps with no
        // momentum must monotonically-ish reduce that sample's error.
        let mut net = Mlp::three_layer(3, 6, seed);
        let mut trainer = Trainer::new(TrainParams {
            learning_rate: 0.1,
            momentum: 0.0,
            seed,
        });
        let input = [0.3f32, 0.7, 0.1];
        let before = {
            let y = net.forward(&input)[0];
            (y - target).powi(2)
        };
        for _ in 0..50 {
            trainer.train_sample(&mut net, &input, &[target]);
        }
        let after = {
            let y = net.forward(&input)[0];
            (y - target).powi(2)
        };
        prop_assert!(after < before + 1e-6, "error {before} -> {after}");
    }

    #[test]
    fn evaluate_is_nonnegative(seed in any::<u64>()) {
        let net = Mlp::three_layer(2, 4, seed);
        let mut trainer = Trainer::new(TrainParams::default());
        let mut set = TrainingSet::new();
        set.add1(vec![0.0, 1.0], 1.0);
        set.add1(vec![1.0, 0.0], 0.0);
        prop_assert!(trainer.evaluate(&net, &set) >= 0.0);
    }

    #[test]
    fn normalizer_maps_fitted_rows_into_unit_box(rows in proptest::collection::vec(
        proptest::collection::vec(-100.0f32..100.0, 4), 1..20)) {
        let n = Normalizer::fit(&rows);
        for row in &rows {
            for (k, &v) in n.transform(row).iter().enumerate() {
                prop_assert!((-1e-5..=1.0 + 1e-5).contains(&v), "feature {k}: {v}");
            }
        }
    }

    #[test]
    fn normalizer_denormalize_inverts(lo in -50.0f32..0.0, span in 0.1f32..100.0,
                                      t in 0.0f32..1.0) {
        let n = Normalizer::from_ranges(&[(lo, lo + span)]);
        let raw = lo + t * span;
        let norm = n.transform(&[raw])[0];
        prop_assert!((n.denormalize(0, norm) - raw).abs() < span * 1e-4);
    }

    #[test]
    fn activations_are_monotone(a in -5.0f32..5.0, b in -5.0f32..5.0) {
        let (lo, hi) = (a.min(b), a.max(b));
        for act in [Activation::Sigmoid, Activation::Tanh, Activation::Relu, Activation::Identity] {
            prop_assert!(act.apply(lo) <= act.apply(hi) + 1e-6, "{act:?}");
        }
    }

    #[test]
    fn activation_derivatives_nonnegative(x in -5.0f32..5.0) {
        for act in [Activation::Sigmoid, Activation::Tanh, Activation::Relu, Activation::Identity] {
            let y = act.apply(x);
            prop_assert!(act.derivative_from_output(y) >= 0.0, "{act:?}");
        }
    }
}
