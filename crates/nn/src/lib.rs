//! A from-scratch artificial neural network, the machine-learning engine of
//! the intelligent visualization system (Tzeng & Ma, SC 2005, Section 3).
//!
//! The paper uses "a three-layer perceptron ... trained with the Feed-Forward
//! Back-Propagation Network (BPN) algorithm". This crate implements exactly
//! that, generalized to any number of hidden layers:
//!
//! - [`Mlp`] — a multi-layer perceptron with configurable [`Activation`]s,
//!   Xavier-initialized from a seed (fully deterministic),
//! - [`Trainer`] — supervised back-propagation with learning rate and
//!   momentum, online or mini-batch,
//! - [`IncrementalTrainer`] — the paper's "training is performed iteratively
//!   in the system's idle loop" workflow: training proceeds in small bursts
//!   while samples may keep arriving, and the current network can be queried
//!   at any point for immediate visual feedback,
//! - [`Normalizer`] — per-feature min-max scaling of inputs, fitted from the
//!   training set.
//!
//! Everything is `f32`, allocation-conscious, and serializable with serde so
//! trained networks can be shipped to "parallel systems or remote machines
//! for rendering" (Section 4.2.3).

pub mod activation;
pub mod introspect;
pub mod mlp;
pub mod normalize;
pub mod svm;
pub mod train;

/// Version of this crate's serialized model types (networks, normalizers,
/// SVMs) inside session artifacts. Bump on any breaking schema change.
pub const SCHEMA_VERSION: u32 = 1;

pub use activation::Activation;
pub use mlp::{Mlp, MlpShapeError, BATCH_LANES};
pub use normalize::Normalizer;
pub use svm::{Kernel, Svm, SvmParams};
pub use train::{IncrementalTrainer, TrainParams, Trainer, TrainingSet};
