//! Neuron activation functions and their derivatives.

use serde::{Deserialize, Serialize};

/// Activation function applied element-wise at a layer's output.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Activation {
    /// Logistic sigmoid `1 / (1 + e^-x)` — the classic BPN choice; output in
    /// `(0, 1)`, matching the paper's "level of certainty" interpretation.
    Sigmoid,
    /// Hyperbolic tangent, output in `(-1, 1)`.
    Tanh,
    /// Rectified linear unit.
    Relu,
    /// Identity (linear layer).
    Identity,
}

impl Activation {
    /// Apply the activation.
    #[inline]
    pub fn apply(self, x: f32) -> f32 {
        match self {
            Activation::Sigmoid => 1.0 / (1.0 + (-x).exp()),
            Activation::Tanh => x.tanh(),
            Activation::Relu => x.max(0.0),
            Activation::Identity => x,
        }
    }

    /// Derivative expressed in terms of the activation *output* `y = f(x)`
    /// (the form back-propagation consumes; exact for all four variants).
    #[inline]
    pub fn derivative_from_output(self, y: f32) -> f32 {
        match self {
            Activation::Sigmoid => y * (1.0 - y),
            Activation::Tanh => 1.0 - y * y,
            Activation::Relu => {
                if y > 0.0 {
                    1.0
                } else {
                    0.0
                }
            }
            Activation::Identity => 1.0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn numeric_derivative(a: Activation, x: f32) -> f32 {
        let h = 1e-3;
        (a.apply(x + h) - a.apply(x - h)) / (2.0 * h)
    }

    #[test]
    fn sigmoid_range_and_midpoint() {
        let s = Activation::Sigmoid;
        assert!((s.apply(0.0) - 0.5).abs() < 1e-6);
        assert!(s.apply(10.0) > 0.999);
        assert!(s.apply(-10.0) < 0.001);
    }

    #[test]
    fn tanh_is_odd() {
        let t = Activation::Tanh;
        assert!((t.apply(1.3) + t.apply(-1.3)).abs() < 1e-6);
        assert_eq!(t.apply(0.0), 0.0);
    }

    #[test]
    fn relu_clamps_negative() {
        let r = Activation::Relu;
        assert_eq!(r.apply(-2.0), 0.0);
        assert_eq!(r.apply(3.5), 3.5);
    }

    #[test]
    fn identity_passthrough() {
        assert_eq!(Activation::Identity.apply(-7.25), -7.25);
        assert_eq!(Activation::Identity.derivative_from_output(123.0), 1.0);
    }

    #[test]
    fn derivatives_match_numeric() {
        for a in [Activation::Sigmoid, Activation::Tanh, Activation::Identity] {
            for &x in &[-2.0f32, -0.5, 0.0, 0.7, 1.9] {
                let y = a.apply(x);
                let analytic = a.derivative_from_output(y);
                let numeric = numeric_derivative(a, x);
                assert!(
                    (analytic - numeric).abs() < 1e-3,
                    "{a:?} at {x}: {analytic} vs {numeric}"
                );
            }
        }
        // ReLU away from the kink.
        for &x in &[-1.5f32, 2.0] {
            let a = Activation::Relu;
            let y = a.apply(x);
            assert!((a.derivative_from_output(y) - numeric_derivative(a, x)).abs() < 1e-3);
        }
    }
}
