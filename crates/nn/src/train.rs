//! Supervised training: feed-forward back-propagation with momentum.

#![allow(clippy::needless_range_loop)] // parallel-array indexing reads clearer here

use crate::mlp::{Mlp, Scratch};
use ifet_obs as obs;
use rand::rngs::SmallRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

/// Hyper-parameters for back-propagation.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TrainParams {
    /// Step size for gradient descent.
    pub learning_rate: f32,
    /// Classical momentum coefficient in `[0, 1)`.
    pub momentum: f32,
    /// Seed for the per-epoch sample shuffle.
    pub seed: u64,
}

impl Default for TrainParams {
    fn default() -> Self {
        Self {
            learning_rate: 0.25,
            momentum: 0.9,
            seed: 0x5EED,
        }
    }
}

/// A supervised training set of `(input, target)` rows.
///
/// In the paper these are "a small number of corresponding inputs and
/// outputs ... provided by the user through an interactive visualization
/// interface" — key-frame transfer-function entries for the IATF, painted
/// voxels for data-space extraction.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct TrainingSet {
    inputs: Vec<Vec<f32>>,
    targets: Vec<Vec<f32>>,
}

impl TrainingSet {
    pub fn new() -> Self {
        Self::default()
    }

    /// Add one sample. All inputs must share a length, as must all targets.
    pub fn add(&mut self, input: Vec<f32>, target: Vec<f32>) {
        if let Some(first) = self.inputs.first() {
            assert_eq!(input.len(), first.len(), "input length mismatch");
        }
        if let Some(first) = self.targets.first() {
            assert_eq!(target.len(), first.len(), "target length mismatch");
        }
        self.inputs.push(input);
        self.targets.push(target);
    }

    /// Convenience for scalar targets.
    pub fn add1(&mut self, input: Vec<f32>, target: f32) {
        self.add(input, vec![target]);
    }

    pub fn len(&self) -> usize {
        self.inputs.len()
    }

    pub fn is_empty(&self) -> bool {
        self.inputs.is_empty()
    }

    pub fn inputs(&self) -> &[Vec<f32>] {
        &self.inputs
    }

    pub fn targets(&self) -> &[Vec<f32>] {
        &self.targets
    }

    pub fn sample(&self, i: usize) -> (&[f32], &[f32]) {
        (&self.inputs[i], &self.targets[i])
    }

    /// Merge another set into this one.
    pub fn extend_from(&mut self, other: &TrainingSet) {
        for i in 0..other.len() {
            let (x, t) = other.sample(i);
            self.add(x.to_vec(), t.to_vec());
        }
    }
}

/// Per-layer momentum buffers matching a network's weight/bias shapes.
#[derive(Debug, Clone)]
struct Velocity {
    weights: Vec<Vec<f32>>,
    biases: Vec<Vec<f32>>,
}

impl Velocity {
    fn for_net(net: &Mlp) -> Self {
        Self {
            weights: net
                .layers()
                .iter()
                .map(|l| vec![0.0; l.weights.len()])
                .collect(),
            biases: net
                .layers()
                .iter()
                .map(|l| vec![0.0; l.biases.len()])
                .collect(),
        }
    }

    fn matches(&self, net: &Mlp) -> bool {
        self.weights.len() == net.layers().len()
            && self
                .weights
                .iter()
                .zip(net.layers())
                .all(|(v, l)| v.len() == l.weights.len())
    }
}

/// Back-propagation trainer holding momentum state.
#[derive(Debug, Clone)]
pub struct Trainer {
    params: TrainParams,
    velocity: Option<Velocity>,
    scratch: Scratch,
    deltas: Vec<Vec<f32>>,
    rng: SmallRng,
}

impl Trainer {
    pub fn new(params: TrainParams) -> Self {
        let rng = SmallRng::seed_from_u64(params.seed);
        Self {
            params,
            velocity: None,
            scratch: Scratch::default(),
            deltas: Vec::new(),
            rng,
        }
    }

    pub fn params(&self) -> TrainParams {
        self.params
    }

    fn ensure_buffers(&mut self, net: &Mlp) {
        if self.velocity.as_ref().map_or(true, |v| !v.matches(net)) {
            self.velocity = Some(Velocity::for_net(net));
        }
        if self.deltas.len() != net.layers().len()
            || self
                .deltas
                .iter()
                .zip(net.layers())
                .any(|(d, l)| d.len() != l.n_out)
        {
            self.deltas = net.layers().iter().map(|l| vec![0.0; l.n_out]).collect();
        }
    }

    /// One online (per-sample) gradient step. Returns the sample's MSE
    /// *before* the update.
    pub fn train_sample(&mut self, net: &mut Mlp, input: &[f32], target: &[f32]) -> f32 {
        assert_eq!(target.len(), net.output_size(), "target length mismatch");
        self.ensure_buffers(net);

        // Forward pass, caching every layer's activations.
        net.forward_scratch(input, &mut self.scratch);
        let n_layers = net.layers().len();

        // Output-layer deltas: dE/dnet = (y - t) * f'(y) for MSE.
        let mut mse = 0.0f32;
        {
            let acts: Vec<f32> = self.scratch_activations(n_layers - 1).to_vec();
            let layer = &net.layers()[n_layers - 1];
            for o in 0..layer.n_out {
                let y = acts[o];
                let err = y - target[o];
                mse += err * err;
                self.deltas[n_layers - 1][o] = err * layer.activation.derivative_from_output(y);
            }
            mse /= layer.n_out as f32;
        }

        // Hidden-layer deltas, back to front.
        for l in (0..n_layers - 1).rev() {
            let next = &net.layers()[l + 1];
            let layer = &net.layers()[l];
            let acts_l: Vec<f32> = self.scratch_activations(l).to_vec();
            for h in 0..layer.n_out {
                let mut acc = 0.0f32;
                for o in 0..next.n_out {
                    acc += next.weights[o * next.n_in + h] * self.deltas[l + 1][o];
                }
                self.deltas[l][h] = acc * layer.activation.derivative_from_output(acts_l[h]);
            }
        }

        // Weight updates with momentum: v = m*v - lr*grad; w += v.
        let lr = self.params.learning_rate;
        let mom = self.params.momentum;
        let vel = self.velocity.as_mut().unwrap();
        for l in 0..n_layers {
            // Input to layer l is the previous layer's activations (or the raw input).
            let layer_input: Vec<f32> = if l == 0 {
                input.to_vec()
            } else {
                self.scratch.activations()[l - 1].clone()
            };
            let layer = &mut net.layers_mut()[l];
            let n_in = layer.n_in;
            for o in 0..layer.n_out {
                let delta = self.deltas[l][o];
                for i in 0..n_in {
                    let g = delta * layer_input[i];
                    let vi = &mut vel.weights[l][o * n_in + i];
                    *vi = mom * *vi - lr * g;
                    layer.weights[o * n_in + i] += *vi;
                }
                let vb = &mut vel.biases[l][o];
                *vb = mom * *vb - lr * delta;
                layer.biases[o] += *vb;
            }
        }

        mse
    }

    fn scratch_activations(&self, l: usize) -> &[f32] {
        &self.scratch.activations()[l]
    }

    /// One epoch of *mini-batch* training: gradients are averaged over each
    /// batch before the (momentum) update. Larger batches give smoother,
    /// more parallelizable steps at the cost of per-epoch progress; batch
    /// size 1 recovers online behaviour (up to shuffle order).
    /// Returns the mean per-sample MSE observed during the epoch.
    pub fn train_epoch_minibatch(
        &mut self,
        net: &mut Mlp,
        set: &TrainingSet,
        batch_size: usize,
    ) -> f32 {
        assert!(!set.is_empty(), "cannot train on an empty set");
        assert!(batch_size >= 1);
        self.ensure_buffers(net);
        let mut order: Vec<usize> = (0..set.len()).collect();
        order.shuffle(&mut self.rng);

        // Gradient accumulators matching each layer's shapes.
        let mut gw: Vec<Vec<f32>> = net
            .layers()
            .iter()
            .map(|l| vec![0.0; l.weights.len()])
            .collect();
        let mut gb: Vec<Vec<f32>> = net
            .layers()
            .iter()
            .map(|l| vec![0.0; l.biases.len()])
            .collect();

        let mut total = 0.0f64;
        for chunk in order.chunks(batch_size) {
            for acc in gw.iter_mut().chain(gb.iter_mut()) {
                acc.iter_mut().for_each(|v| *v = 0.0);
            }
            for &i in chunk {
                let (x, t) = set.sample(i);
                total += self.accumulate_gradient(net, x, t, &mut gw, &mut gb) as f64;
            }
            // Apply the mean gradient with momentum.
            let scale = 1.0 / chunk.len() as f32;
            let lr = self.params.learning_rate;
            let mom = self.params.momentum;
            let vel = self.velocity.as_mut().unwrap();
            for (l, layer) in net.layers_mut().iter_mut().enumerate() {
                for (w, (g, v)) in layer
                    .weights
                    .iter_mut()
                    .zip(gw[l].iter().zip(vel.weights[l].iter_mut()))
                {
                    *v = mom * *v - lr * g * scale;
                    *w += *v;
                }
                for (b, (g, v)) in layer
                    .biases
                    .iter_mut()
                    .zip(gb[l].iter().zip(vel.biases[l].iter_mut()))
                {
                    *v = mom * *v - lr * g * scale;
                    *b += *v;
                }
            }
        }
        (total / set.len() as f64) as f32
    }

    /// Forward + backward for one sample, adding its gradient into the
    /// accumulators without touching the weights. Returns the sample MSE.
    fn accumulate_gradient(
        &mut self,
        net: &Mlp,
        input: &[f32],
        target: &[f32],
        gw: &mut [Vec<f32>],
        gb: &mut [Vec<f32>],
    ) -> f32 {
        assert_eq!(target.len(), net.output_size());
        net.forward_scratch(input, &mut self.scratch);
        let n_layers = net.layers().len();

        let mut mse = 0.0f32;
        {
            let acts: Vec<f32> = self.scratch_activations(n_layers - 1).to_vec();
            let layer = &net.layers()[n_layers - 1];
            for o in 0..layer.n_out {
                let y = acts[o];
                let err = y - target[o];
                mse += err * err;
                self.deltas[n_layers - 1][o] = err * layer.activation.derivative_from_output(y);
            }
            mse /= layer.n_out as f32;
        }
        for l in (0..n_layers - 1).rev() {
            let next = &net.layers()[l + 1];
            let layer = &net.layers()[l];
            let acts_l: Vec<f32> = self.scratch_activations(l).to_vec();
            for h in 0..layer.n_out {
                let mut acc = 0.0f32;
                for o in 0..next.n_out {
                    acc += next.weights[o * next.n_in + h] * self.deltas[l + 1][o];
                }
                self.deltas[l][h] = acc * layer.activation.derivative_from_output(acts_l[h]);
            }
        }
        for l in 0..n_layers {
            let layer_input: Vec<f32> = if l == 0 {
                input.to_vec()
            } else {
                self.scratch.activations()[l - 1].clone()
            };
            let layer = &net.layers()[l];
            for o in 0..layer.n_out {
                let delta = self.deltas[l][o];
                for i in 0..layer.n_in {
                    gw[l][o * layer.n_in + i] += delta * layer_input[i];
                }
                gb[l][o] += delta;
            }
        }
        mse
    }

    /// One epoch of online training over a shuffled ordering of the set.
    /// Returns the mean per-sample MSE observed during the epoch.
    pub fn train_epoch(&mut self, net: &mut Mlp, set: &TrainingSet) -> f32 {
        assert!(!set.is_empty(), "cannot train on an empty set");
        let _span = obs::span("nn.epoch");
        let mut order: Vec<usize> = (0..set.len()).collect();
        order.shuffle(&mut self.rng);
        let mut total = 0.0f64;
        for &i in &order {
            let (x, t) = set.sample(i);
            total += self.train_sample(net, x, t) as f64;
        }
        let loss = (total / set.len() as f64) as f32;
        // Training is serial and seeded, so the loss is deterministic and can
        // ride in a stable trace (fixed-point micro-units; counters are u64).
        obs::counter("samples", set.len() as u64);
        obs::counter("loss_micro", obs::micros_f32(loss));
        loss
    }

    /// Train for `epochs` epochs; returns the per-epoch mean MSE trace.
    pub fn train(&mut self, net: &mut Mlp, set: &TrainingSet, epochs: usize) -> Vec<f32> {
        let _span = obs::span("nn.train");
        obs::counter("epochs", epochs as u64);
        (0..epochs).map(|_| self.train_epoch(net, set)).collect()
    }

    /// Mean MSE of the network over a set, without updating weights.
    pub fn evaluate(&mut self, net: &Mlp, set: &TrainingSet) -> f32 {
        if set.is_empty() {
            return 0.0;
        }
        let mut total = 0.0f64;
        for i in 0..set.len() {
            let (x, t) = set.sample(i);
            let y = net.forward_scratch(x, &mut self.scratch);
            let mse: f32 =
                y.iter().zip(t).map(|(a, b)| (a - b) * (a - b)).sum::<f32>() / t.len() as f32;
            total += mse as f64;
        }
        (total / set.len() as f64) as f32
    }
}

/// The paper's interactive training loop: "training is performed iteratively
/// in the system's idle loop ... the user can visualize the current rendered
/// result ... and continue to interact with the system by specifying new key
/// frames as training progresses."
///
/// `IncrementalTrainer` owns the network and training set; the caller
/// alternates [`IncrementalTrainer::add_sample`] (new user input) with
/// [`IncrementalTrainer::step`] (a burst of idle-loop training) and may read
/// the current network at any time via [`IncrementalTrainer::network`].
#[derive(Debug, Clone)]
pub struct IncrementalTrainer {
    net: Mlp,
    trainer: Trainer,
    set: TrainingSet,
    epochs_done: usize,
    loss_history: Vec<f32>,
}

impl IncrementalTrainer {
    pub fn new(net: Mlp, params: TrainParams) -> Self {
        Self {
            net,
            trainer: Trainer::new(params),
            set: TrainingSet::new(),
            epochs_done: 0,
            loss_history: Vec::new(),
        }
    }

    /// Add a training sample (e.g. one painted voxel or TF entry).
    pub fn add_sample(&mut self, input: Vec<f32>, target: Vec<f32>) {
        self.set.add(input, target);
    }

    /// Bulk-add samples.
    pub fn add_set(&mut self, set: &TrainingSet) {
        self.set.extend_from(set);
    }

    /// Run `epochs` idle-loop training epochs; returns the final epoch loss
    /// (`None` if no samples have been provided yet).
    pub fn step(&mut self, epochs: usize) -> Option<f32> {
        if self.set.is_empty() || epochs == 0 {
            return None;
        }
        let _span = obs::span("nn.train");
        obs::counter("epochs", epochs as u64);
        let mut last = None;
        for _ in 0..epochs {
            let loss = self.trainer.train_epoch(&mut self.net, &self.set);
            self.loss_history.push(loss);
            self.epochs_done += 1;
            last = Some(loss);
        }
        last
    }

    /// Train until the epoch loss drops below `target_loss` or `max_epochs`
    /// elapse. Returns the final loss.
    pub fn train_until(&mut self, target_loss: f32, max_epochs: usize) -> Option<f32> {
        let mut last = None;
        for _ in 0..max_epochs {
            last = self.step(1);
            if let Some(l) = last {
                if l <= target_loss {
                    break;
                }
            } else {
                break;
            }
        }
        last
    }

    /// The current network (usable for immediate visual feedback mid-training).
    pub fn network(&self) -> &Mlp {
        &self.net
    }

    /// Take ownership of the trained network.
    pub fn into_network(self) -> Mlp {
        self.net
    }

    pub fn epochs_done(&self) -> usize {
        self.epochs_done
    }

    pub fn loss_history(&self) -> &[f32] {
        &self.loss_history
    }

    pub fn num_samples(&self) -> usize {
        self.set.len()
    }

    /// Replace the network with a fresh one of different input size,
    /// mirroring the paper's Section 6: "when the user considers less
    /// properties, the neural network becomes smaller". Existing samples are
    /// discarded (their shape no longer matches); training restarts.
    pub fn reshape(&mut self, net: Mlp) {
        self.net = net;
        self.set = TrainingSet::new();
        self.epochs_done = 0;
        self.loss_history.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::activation::Activation;

    fn xor_set() -> TrainingSet {
        let mut s = TrainingSet::new();
        s.add1(vec![0.0, 0.0], 0.0);
        s.add1(vec![0.0, 1.0], 1.0);
        s.add1(vec![1.0, 0.0], 1.0);
        s.add1(vec![1.0, 1.0], 0.0);
        s
    }

    #[test]
    fn training_set_accounting() {
        let s = xor_set();
        assert_eq!(s.len(), 4);
        assert!(!s.is_empty());
        let (x, t) = s.sample(1);
        assert_eq!(x, &[0.0, 1.0]);
        assert_eq!(t, &[1.0]);
    }

    #[test]
    #[should_panic]
    fn ragged_inputs_panic() {
        let mut s = TrainingSet::new();
        s.add1(vec![0.0, 0.0], 0.0);
        s.add1(vec![0.0], 0.0);
    }

    #[test]
    fn learns_xor() {
        // The canonical non-linearly-separable task: a three-layer perceptron
        // with enough hidden units must drive the loss near zero.
        let mut net = Mlp::three_layer(2, 8, 1);
        let mut tr = Trainer::new(TrainParams {
            learning_rate: 0.5,
            momentum: 0.9,
            seed: 42,
        });
        let set = xor_set();
        let losses = tr.train(&mut net, &set, 2000);
        let final_loss = *losses.last().unwrap();
        assert!(final_loss < 0.01, "final loss {final_loss}");
        let mut s = Scratch::for_net(&net);
        assert!(net.predict1(&[0.0, 0.0], &mut s) < 0.2);
        assert!(net.predict1(&[1.0, 0.0], &mut s) > 0.8);
        assert!(net.predict1(&[0.0, 1.0], &mut s) > 0.8);
        assert!(net.predict1(&[1.0, 1.0], &mut s) < 0.2);
    }

    #[test]
    fn learns_linear_regression() {
        // Identity output layer can fit y = 0.5 x0 - 0.25 x1 + 0.1.
        let mut net = Mlp::new(&[2, 6, 1], Activation::Tanh, Activation::Identity, 5).unwrap();
        let mut tr = Trainer::new(TrainParams {
            learning_rate: 0.05,
            momentum: 0.8,
            seed: 1,
        });
        let mut set = TrainingSet::new();
        for i in 0..50 {
            let x0 = (i % 10) as f32 / 10.0;
            let x1 = (i / 10) as f32 / 5.0;
            set.add1(vec![x0, x1], 0.5 * x0 - 0.25 * x1 + 0.1);
        }
        let losses = tr.train(&mut net, &set, 500);
        assert!(*losses.last().unwrap() < 1e-3);
    }

    #[test]
    fn loss_decreases_on_average() {
        let mut net = Mlp::three_layer(2, 8, 1);
        let mut tr = Trainer::new(TrainParams::default());
        let set = xor_set();
        let losses = tr.train(&mut net, &set, 600);
        let early: f32 = losses[..50].iter().sum::<f32>() / 50.0;
        let late: f32 = losses[losses.len() - 50..].iter().sum::<f32>() / 50.0;
        assert!(late < early, "late {late} !< early {early}");
    }

    #[test]
    fn evaluate_does_not_mutate() {
        let mut net = Mlp::three_layer(2, 4, 3);
        let snapshot = net.clone();
        let mut tr = Trainer::new(TrainParams::default());
        let set = xor_set();
        let _ = tr.evaluate(&net, &set);
        assert_eq!(net, snapshot);
        // And training does mutate.
        tr.train_epoch(&mut net, &set);
        assert_ne!(net, snapshot);
    }

    #[test]
    fn deterministic_training() {
        let run = || {
            let mut net = Mlp::three_layer(2, 6, 9);
            let mut tr = Trainer::new(TrainParams::default());
            tr.train(&mut net, &xor_set(), 50);
            net
        };
        assert_eq!(run(), run());
    }

    #[test]
    #[should_panic]
    fn empty_epoch_panics() {
        let mut net = Mlp::three_layer(2, 3, 0);
        let mut tr = Trainer::new(TrainParams::default());
        tr.train_epoch(&mut net, &TrainingSet::new());
    }

    #[test]
    fn minibatch_learns_xor() {
        let mut net = Mlp::three_layer(2, 8, 1);
        let mut tr = Trainer::new(TrainParams {
            learning_rate: 0.8,
            momentum: 0.9,
            seed: 42,
        });
        let set = xor_set();
        let mut last = 1.0;
        for _ in 0..3000 {
            last = tr.train_epoch_minibatch(&mut net, &set, 4);
        }
        assert!(last < 0.02, "mini-batch XOR loss {last}");
    }

    #[test]
    fn minibatch_is_deterministic() {
        let run = || {
            let mut net = Mlp::three_layer(2, 6, 3);
            let mut tr = Trainer::new(TrainParams::default());
            for _ in 0..40 {
                tr.train_epoch_minibatch(&mut net, &xor_set(), 2);
            }
            net
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn minibatch_size_one_converges_like_online() {
        // Not bit-identical to online (update ordering differs slightly),
        // but batch size 1 must reach comparable loss.
        let set = xor_set();
        let mut a = Mlp::three_layer(2, 8, 5);
        let mut b = a.clone();
        let mut ta = Trainer::new(TrainParams::default());
        let mut tb = Trainer::new(TrainParams::default());
        let mut la = 1.0;
        let mut lb = 1.0;
        for _ in 0..1500 {
            la = ta.train_epoch(&mut a, &set);
            lb = tb.train_epoch_minibatch(&mut b, &set, 1);
        }
        assert!(la < 0.05 && lb < 0.05, "online {la}, batch-1 {lb}");
    }

    #[test]
    #[should_panic]
    fn minibatch_empty_set_panics() {
        let mut net = Mlp::three_layer(2, 3, 0);
        let mut tr = Trainer::new(TrainParams::default());
        tr.train_epoch_minibatch(&mut net, &TrainingSet::new(), 4);
    }

    #[test]
    fn incremental_idle_loop_workflow() {
        let net = Mlp::three_layer(2, 8, 1);
        let mut inc = IncrementalTrainer::new(
            net,
            TrainParams {
                learning_rate: 0.5,
                momentum: 0.9,
                seed: 3,
            },
        );
        // No samples yet: stepping is a no-op.
        assert!(inc.step(10).is_none());
        assert_eq!(inc.epochs_done(), 0);

        // User paints two samples; idle loop trains a little.
        inc.add_sample(vec![0.0, 0.0], vec![0.0]);
        inc.add_sample(vec![1.0, 1.0], vec![0.0]);
        inc.step(50).unwrap();
        assert_eq!(inc.epochs_done(), 50);

        // User adds the rest; training continues from current weights.
        inc.add_sample(vec![0.0, 1.0], vec![1.0]);
        inc.add_sample(vec![1.0, 0.0], vec![1.0]);
        let final_loss = inc.train_until(0.01, 4000).unwrap();
        assert!(final_loss < 0.01, "loss {final_loss}");
        assert_eq!(inc.num_samples(), 4);
        assert_eq!(inc.loss_history().len(), inc.epochs_done());
    }

    #[test]
    fn reshape_resets_state() {
        let mut inc = IncrementalTrainer::new(Mlp::three_layer(3, 4, 0), TrainParams::default());
        inc.add_sample(vec![0.0; 3], vec![0.5]);
        inc.step(5);
        inc.reshape(Mlp::three_layer(2, 4, 0));
        assert_eq!(inc.num_samples(), 0);
        assert_eq!(inc.epochs_done(), 0);
        assert_eq!(inc.network().input_size(), 2);
    }

    #[test]
    fn extend_from_merges() {
        let mut a = xor_set();
        let b = xor_set();
        a.extend_from(&b);
        assert_eq!(a.len(), 8);
    }
}
