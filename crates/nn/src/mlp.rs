//! The multi-layer perceptron.

use crate::activation::Activation;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// One fully-connected layer: `out = act(W · in + b)`.
///
/// Weights are stored row-major: `weights[o * n_in + i]` connects input `i`
/// to output neuron `o`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Layer {
    pub(crate) n_in: usize,
    pub(crate) n_out: usize,
    pub(crate) weights: Vec<f32>,
    pub(crate) biases: Vec<f32>,
    pub(crate) activation: Activation,
}

impl Layer {
    fn new(n_in: usize, n_out: usize, activation: Activation, rng: &mut SmallRng) -> Self {
        // Xavier/Glorot uniform initialization.
        let bound = (6.0 / (n_in + n_out) as f32).sqrt();
        let weights = (0..n_in * n_out)
            .map(|_| rng.gen_range(-bound..=bound))
            .collect();
        let biases = vec![0.0; n_out];
        Self {
            n_in,
            n_out,
            weights,
            biases,
            activation,
        }
    }

    /// Number of inputs this layer consumes.
    pub fn n_in(&self) -> usize {
        self.n_in
    }

    /// Number of neurons (outputs) in this layer.
    pub fn n_out(&self) -> usize {
        self.n_out
    }

    /// The weight from input `i` to output neuron `o`.
    pub fn weight(&self, o: usize, i: usize) -> f32 {
        self.weights[o * self.n_in + i]
    }

    /// The bias of output neuron `o`.
    pub fn bias(&self, o: usize) -> f32 {
        self.biases[o]
    }

    /// This layer's activation function.
    pub fn activation_kind(&self) -> Activation {
        self.activation
    }

    /// Forward one layer: `out` must have length `n_out`.
    ///
    /// The length checks are hard asserts: the accumulation below zips the
    /// weight row against the input, which would silently truncate on a
    /// mismatch and return garbage instead of failing. A malformed network
    /// (e.g. a corrupted artifact that skipped [`Mlp::validate_shape`]) must
    /// die here, in every build profile, not mispredict.
    #[inline]
    pub(crate) fn forward_into(&self, input: &[f32], out: &mut [f32]) {
        assert_eq!(
            input.len(),
            self.n_in,
            "layer input length {} != layer width {}",
            input.len(),
            self.n_in
        );
        assert_eq!(
            out.len(),
            self.n_out,
            "layer output length {} != layer neuron count {}",
            out.len(),
            self.n_out
        );
        for (o, out_v) in out.iter_mut().enumerate() {
            let row = &self.weights[o * self.n_in..(o + 1) * self.n_in];
            let mut acc = self.biases[o];
            for (w, x) in row.iter().zip(input) {
                acc += w * x;
            }
            *out_v = self.activation.apply(acc);
        }
    }

    /// Batched forward: `input` packs `rows` samples feature-major
    /// (`input[i * rows + b]` is feature `i` of sample `b`), `out` receives
    /// the activations in the same structure-of-arrays layout
    /// (`out[o * rows + b]`).
    ///
    /// Per sample the accumulation visits inputs in exactly the order of
    /// [`Self::forward_into`] — bias first, then features ascending — so
    /// every sample's result is bit-identical to a scalar pass. The batch
    /// dimension only widens the innermost loop into [`BATCH_LANES`]-wide
    /// chunks of independent multiply-adds that the autovectorizer lifts to
    /// SIMD.
    pub(crate) fn forward_batch_into(&self, input: &[f32], rows: usize, out: &mut [f32]) {
        assert_eq!(
            input.len(),
            self.n_in * rows,
            "batched layer input length {} != {} x {rows} rows",
            input.len(),
            self.n_in
        );
        assert_eq!(
            out.len(),
            self.n_out * rows,
            "batched layer output length {} != {} x {rows} rows",
            out.len(),
            self.n_out
        );
        if rows == 0 {
            return;
        }
        for o in 0..self.n_out {
            let wrow = &self.weights[o * self.n_in..(o + 1) * self.n_in];
            let out_row = &mut out[o * rows..(o + 1) * rows];
            out_row.fill(self.biases[o]);
            for (in_row, &w) in input.chunks_exact(rows).zip(wrow) {
                let mut acc = out_row.chunks_exact_mut(BATCH_LANES);
                let mut xs = in_row.chunks_exact(BATCH_LANES);
                for (a, x) in acc.by_ref().zip(xs.by_ref()) {
                    for l in 0..BATCH_LANES {
                        a[l] += w * x[l];
                    }
                }
                for (a, &x) in acc.into_remainder().iter_mut().zip(xs.remainder()) {
                    *a += w * x;
                }
            }
            for a in out_row.iter_mut() {
                *a = self.activation.apply(*a);
            }
        }
    }
}

/// Fixed chunk width of the batched accumulation kernels. Eight `f32` lanes
/// fill one AVX2 register and two NEON registers; the remainder loop handles
/// odd tails.
pub const BATCH_LANES: usize = 8;

/// Why an [`Mlp`] could not be constructed from the requested layer sizes.
/// Construction is reachable from user-supplied hyper-parameters (CLI flags,
/// session artifacts), so bad shapes are reported instead of panicking.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MlpShapeError {
    /// Fewer than two sizes — a network needs at least input and output widths.
    TooFewLayers { got: usize },
    /// `sizes[index]` is zero.
    ZeroLayerSize { index: usize },
}

impl std::fmt::Display for MlpShapeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MlpShapeError::TooFewLayers { got } => {
                write!(f, "need at least input and output layer sizes, got {got}")
            }
            MlpShapeError::ZeroLayerSize { index } => {
                write!(f, "layer size {index} is zero; every layer needs neurons")
            }
        }
    }
}

impl std::error::Error for MlpShapeError {}

/// A feed-forward multi-layer perceptron.
///
/// The paper's configuration is a *three-layer perceptron*: one input layer,
/// one hidden layer, one output layer — i.e. `Mlp::new(&[n_in, n_hidden, n_out], ..)`.
/// Deeper stacks are supported but unnecessary for reproducing the paper.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Mlp {
    layers: Vec<Layer>,
}

impl Mlp {
    /// Build a network with the given layer sizes (`sizes[0]` inputs,
    /// `sizes.last()` outputs), hidden activation `hidden_act` and output
    /// activation `output_act`, deterministically initialized from `seed`.
    ///
    /// Sizes arrive from user-facing configuration (classifier
    /// hyper-parameters, CLI flags), so malformed shapes are a typed
    /// [`MlpShapeError`] rather than a panic.
    pub fn new(
        sizes: &[usize],
        hidden_act: Activation,
        output_act: Activation,
        seed: u64,
    ) -> Result<Self, MlpShapeError> {
        if sizes.len() < 2 {
            return Err(MlpShapeError::TooFewLayers { got: sizes.len() });
        }
        if let Some(index) = sizes.iter().position(|&s| s == 0) {
            return Err(MlpShapeError::ZeroLayerSize { index });
        }
        let mut rng = SmallRng::seed_from_u64(seed);
        let n = sizes.len() - 1;
        let layers = (0..n)
            .map(|i| {
                let act = if i + 1 == n { output_act } else { hidden_act };
                Layer::new(sizes[i], sizes[i + 1], act, &mut rng)
            })
            .collect();
        Ok(Self { layers })
    }

    /// The paper's default: `inputs -> hidden (sigmoid) -> 1 output (sigmoid)`.
    ///
    /// ```
    /// use ifet_nn::Mlp;
    /// let net = Mlp::three_layer(3, 16, 42);
    /// assert_eq!(net.layer_sizes(), vec![3, 16, 1]);
    /// let certainty = net.forward(&[0.2, 0.9, 0.5])[0];
    /// assert!(certainty > 0.0 && certainty < 1.0);
    /// ```
    pub fn three_layer(n_in: usize, n_hidden: usize, seed: u64) -> Self {
        Self::new(
            &[n_in, n_hidden, 1],
            Activation::Sigmoid,
            Activation::Sigmoid,
            seed,
        )
        .expect("three_layer needs non-zero input and hidden widths")
    }

    /// Number of input features.
    pub fn input_size(&self) -> usize {
        self.layers[0].n_in
    }

    /// Number of outputs.
    pub fn output_size(&self) -> usize {
        self.layers.last().unwrap().n_out
    }

    /// Layer output sizes, input first.
    pub fn layer_sizes(&self) -> Vec<usize> {
        let mut v = vec![self.layers[0].n_in];
        v.extend(self.layers.iter().map(|l| l.n_out));
        v
    }

    /// Total trainable parameter count.
    pub fn num_params(&self) -> usize {
        self.layers
            .iter()
            .map(|l| l.weights.len() + l.biases.len())
            .sum()
    }

    pub(crate) fn layers(&self) -> &[Layer] {
        &self.layers
    }

    /// Read-only access to the layer stack (for introspection tools).
    pub fn layers_ref(&self) -> &[Layer] {
        &self.layers
    }

    /// Overwrite one weight (used by weight-transferring network surgery).
    pub fn set_weight(&mut self, layer: usize, o: usize, i: usize, w: f32) {
        let l = &mut self.layers[layer];
        assert!(o < l.n_out && i < l.n_in);
        l.weights[o * l.n_in + i] = w;
    }

    /// Overwrite one bias.
    pub fn set_bias(&mut self, layer: usize, o: usize, b: f32) {
        let l = &mut self.layers[layer];
        assert!(o < l.n_out);
        l.biases[o] = b;
    }

    pub(crate) fn layers_mut(&mut self) -> &mut [Layer] {
        &mut self.layers
    }

    /// Run the network, allocating the output vector.
    pub fn forward(&self, input: &[f32]) -> Vec<f32> {
        let mut scratch = Scratch::for_net(self);
        self.forward_scratch(input, &mut scratch);
        scratch.output().to_vec()
    }

    /// Run the network reusing `scratch` buffers (no allocation after the
    /// first call) — the hot path for per-voxel classification.
    pub fn forward_scratch<'s>(&self, input: &[f32], scratch: &'s mut Scratch) -> &'s [f32] {
        assert_eq!(
            input.len(),
            self.input_size(),
            "input length {} != network input size {}",
            input.len(),
            self.input_size()
        );
        scratch.ensure(self);
        for (li, layer) in self.layers.iter().enumerate() {
            // Split-borrow: the previous layer's output feeds this layer's buffer.
            let (done, todo) = scratch.activations.split_at_mut(li);
            let layer_input: &[f32] = if li == 0 { input } else { &done[li - 1] };
            layer.forward_into(layer_input, &mut todo[0]);
        }
        scratch.output()
    }

    /// Convenience for single-output networks: forward and take output 0.
    pub fn predict1(&self, input: &[f32], scratch: &mut Scratch) -> f32 {
        self.forward_scratch(input, scratch)[0]
    }

    /// Batched forward pass over `inputs`, which packs whole feature rows
    /// back-to-back (`inputs[b * n_in + i]`, i.e. ordinary row-major layout).
    /// Returns the last layer's activations feature-major:
    /// `out[o * rows + b]` is output `o` of row `b`.
    ///
    /// Each row's arithmetic replays [`Self::forward_scratch`] operation for
    /// operation (same accumulation order, same activation calls), so the
    /// batched result is bit-identical to `rows` scalar passes — batching is
    /// purely a throughput optimization. See `forward_batch_into` for the
    /// SIMD-friendly kernel shape.
    pub fn forward_batch<'s>(&self, inputs: &[f32], scratch: &'s mut Scratch) -> &'s [f32] {
        let n_in = self.input_size();
        assert_eq!(
            inputs.len() % n_in,
            0,
            "batched input length {} is not a multiple of network input size {n_in}",
            inputs.len()
        );
        let rows = inputs.len() / n_in;
        scratch.ensure_batch(self, rows);
        // Transpose the rows into the structure-of-arrays staging buffer so
        // each layer kernel streams contiguous per-feature lanes.
        for (b, row) in inputs.chunks_exact(n_in).enumerate() {
            for (i, &v) in row.iter().enumerate() {
                scratch.input_soa[i * rows + b] = v;
            }
        }
        for (li, layer) in self.layers.iter().enumerate() {
            let (done, todo) = scratch.batch.split_at_mut(li);
            let layer_input: &[f32] = if li == 0 {
                &scratch.input_soa
            } else {
                &done[li - 1]
            };
            layer.forward_batch_into(layer_input, rows, &mut todo[0]);
        }
        // Row throughput depends on the caller's batch configuration, so it
        // is a runtime counter (stripped from stable traces).
        ifet_obs::counter_runtime("nn.batch.rows", rows as u64);
        scratch.batch.last().map(|v| v.as_slice()).unwrap_or(&[])
    }

    /// Batched [`Self::predict1`]: classify `rows` packed feature rows into
    /// `out` (cleared first), one certainty per row, bit-identical to calling
    /// `predict1` on each row.
    pub fn predict_batch(&self, inputs: &[f32], scratch: &mut Scratch, out: &mut Vec<f32>) {
        assert_eq!(
            self.output_size(),
            1,
            "predict_batch needs a single-output network, this one has {} outputs",
            self.output_size()
        );
        out.clear();
        // A single output neuron makes the SoA result exactly the per-row
        // certainty vector.
        out.extend_from_slice(self.forward_batch(inputs, scratch));
    }

    /// Check the structural invariants a deserialized network must satisfy
    /// before it is safe to run: non-empty layer stack, non-zero layer sizes,
    /// weight/bias buffers of exactly the advertised shape, and consecutive
    /// layers that agree on their interface width.
    ///
    /// `forward_*` index weight rows by shape arithmetic, so feeding a
    /// malformed network (e.g. from a corrupted session artifact) would panic
    /// or read garbage — loaders call this to reject such inputs with a typed
    /// error instead.
    pub fn validate_shape(&self) -> Result<(), String> {
        if self.layers.is_empty() {
            return Err("network has no layers".to_string());
        }
        let mut prev_out: Option<usize> = None;
        for (li, l) in self.layers.iter().enumerate() {
            if l.n_in == 0 || l.n_out == 0 {
                return Err(format!("layer {li} has a zero dimension"));
            }
            let expected = l
                .n_in
                .checked_mul(l.n_out)
                .ok_or_else(|| format!("layer {li} weight count overflows"))?;
            if l.weights.len() != expected {
                return Err(format!(
                    "layer {li} has {} weights, shape {}x{} needs {expected}",
                    l.weights.len(),
                    l.n_out,
                    l.n_in
                ));
            }
            if l.biases.len() != l.n_out {
                return Err(format!(
                    "layer {li} has {} biases for {} outputs",
                    l.biases.len(),
                    l.n_out
                ));
            }
            if let Some(p) = prev_out {
                if p != l.n_in {
                    return Err(format!(
                        "layer {li} consumes {} inputs but layer {} produces {p}",
                        l.n_in,
                        li - 1
                    ));
                }
            }
            prev_out = Some(l.n_out);
        }
        Ok(())
    }

    /// Serialize to a JSON string.
    pub fn to_json(&self) -> String {
        serde_json::to_string(self).expect("Mlp serialization cannot fail")
    }

    /// Deserialize from [`Mlp::to_json`] output.
    pub fn from_json(s: &str) -> Result<Self, serde_json::Error> {
        serde_json::from_str(s)
    }
}

/// Reusable forward-pass buffers: one activation vector per layer for the
/// scalar path, plus structure-of-arrays buffers for the batched path
/// (`batch[li][o * rows + b]`). Both self-size on first use and coexist in
/// one scratch so pooled predictors carry a single object.
#[derive(Debug, Clone, Default)]
pub struct Scratch {
    activations: Vec<Vec<f32>>,
    batch: Vec<Vec<f32>>,
    input_soa: Vec<f32>,
    batch_rows: usize,
}

impl Scratch {
    /// Allocate scratch sized for `net`.
    pub fn for_net(net: &Mlp) -> Self {
        let mut s = Self::default();
        s.ensure(net);
        s
    }

    fn ensure(&mut self, net: &Mlp) {
        if self.activations.len() != net.layers.len()
            || self
                .activations
                .iter()
                .zip(&net.layers)
                .any(|(a, l)| a.len() != l.n_out)
        {
            self.activations = net.layers.iter().map(|l| vec![0.0; l.n_out]).collect();
        }
    }

    fn ensure_batch(&mut self, net: &Mlp, rows: usize) {
        if self.batch.len() != net.layers.len()
            || self.batch_rows != rows
            || self
                .batch
                .iter()
                .zip(&net.layers)
                .any(|(a, l)| a.len() != l.n_out * rows)
        {
            self.batch = net
                .layers
                .iter()
                .map(|l| vec![0.0; l.n_out * rows])
                .collect();
            self.batch_rows = rows;
        }
        self.input_soa.resize(net.input_size() * rows, 0.0);
    }

    /// The last layer's activations from the most recent forward pass.
    pub fn output(&self) -> &[f32] {
        self.activations.last().map(|v| v.as_slice()).unwrap_or(&[])
    }

    /// All per-layer activations (used by the trainer).
    pub(crate) fn activations(&self) -> &[Vec<f32>] {
        &self.activations
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_shapes() {
        let net = Mlp::new(&[3, 8, 2], Activation::Sigmoid, Activation::Identity, 42).unwrap();
        assert_eq!(net.input_size(), 3);
        assert_eq!(net.output_size(), 2);
        assert_eq!(net.layer_sizes(), vec![3, 8, 2]);
        assert_eq!(net.num_params(), 3 * 8 + 8 + 8 * 2 + 2);
    }

    #[test]
    fn three_layer_is_paper_shape() {
        let net = Mlp::three_layer(5, 10, 0);
        assert_eq!(net.layer_sizes(), vec![5, 10, 1]);
    }

    #[test]
    fn bad_sizes_are_typed_errors() {
        let too_few = Mlp::new(&[4], Activation::Sigmoid, Activation::Sigmoid, 0).unwrap_err();
        assert_eq!(too_few, MlpShapeError::TooFewLayers { got: 1 });
        assert!(too_few.to_string().contains("at least"));

        let zero = Mlp::new(&[4, 0, 1], Activation::Sigmoid, Activation::Sigmoid, 0).unwrap_err();
        assert_eq!(zero, MlpShapeError::ZeroLayerSize { index: 1 });
        assert!(zero.to_string().contains("zero"));
    }

    #[test]
    #[should_panic]
    fn three_layer_zero_hidden_panics() {
        let _ = Mlp::three_layer(4, 0, 0);
    }

    #[test]
    fn deterministic_from_seed() {
        let a = Mlp::three_layer(4, 6, 7);
        let b = Mlp::three_layer(4, 6, 7);
        let c = Mlp::three_layer(4, 6, 8);
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn forward_output_in_sigmoid_range() {
        let net = Mlp::three_layer(3, 5, 1);
        let out = net.forward(&[0.1, 0.9, 0.4]);
        assert_eq!(out.len(), 1);
        assert!(out[0] > 0.0 && out[0] < 1.0);
    }

    #[test]
    fn forward_scratch_matches_forward() {
        let net = Mlp::new(&[2, 4, 4, 2], Activation::Tanh, Activation::Identity, 3).unwrap();
        let x = [0.3, -0.7];
        let a = net.forward(&x);
        let mut s = Scratch::for_net(&net);
        let b = net.forward_scratch(&x, &mut s).to_vec();
        assert_eq!(a, b);
        // Re-run with the same scratch; still consistent.
        let c = net.forward_scratch(&x, &mut s).to_vec();
        assert_eq!(a, c);
    }

    #[test]
    #[should_panic]
    fn wrong_input_length_panics() {
        let net = Mlp::three_layer(3, 4, 0);
        let _ = net.forward(&[1.0, 2.0]);
    }

    #[test]
    fn identity_single_layer_is_affine() {
        // One linear layer must compute exactly W x + b.
        let mut net = Mlp::new(&[2, 1], Activation::Sigmoid, Activation::Identity, 0).unwrap();
        net.layers_mut()[0].weights = vec![2.0, -1.0];
        net.layers_mut()[0].biases = vec![0.5];
        let y = net.forward(&[3.0, 4.0]);
        assert!((y[0] - (2.0 * 3.0 - 4.0 + 0.5)).abs() < 1e-6);
    }

    #[test]
    fn json_roundtrip() {
        let net = Mlp::three_layer(4, 8, 11);
        let s = net.to_json();
        let back = Mlp::from_json(&s).unwrap();
        assert_eq!(net, back);
        let x = [0.2, 0.4, 0.6, 0.8];
        assert_eq!(net.forward(&x), back.forward(&x));
    }

    #[test]
    fn validate_shape_accepts_trained_and_rejects_corrupt() {
        let net = Mlp::three_layer(3, 5, 9);
        assert!(net.validate_shape().is_ok());

        let mut bad = net.clone();
        bad.layers[0].weights.pop();
        assert!(bad.validate_shape().is_err());

        let mut bad = net.clone();
        bad.layers[1].n_in = 4; // breaks both weight count and chain width
        assert!(bad.validate_shape().is_err());

        let mut bad = net.clone();
        bad.layers[0].biases.push(0.0);
        assert!(bad.validate_shape().is_err());

        let bad = Mlp { layers: Vec::new() };
        assert!(bad.validate_shape().is_err());
    }

    #[test]
    fn scratch_resizes_for_different_net() {
        let a = Mlp::three_layer(2, 3, 0);
        let b = Mlp::new(&[2, 7, 2], Activation::Sigmoid, Activation::Sigmoid, 1).unwrap();
        let mut s = Scratch::for_net(&a);
        let _ = b.forward_scratch(&[0.1, 0.2], &mut s);
        assert_eq!(s.output().len(), 2);
    }

    /// Deterministic pseudo-random feature rows covering negatives, zeros,
    /// and values past the activations' saturation knees.
    fn test_rows(rows: usize, n_in: usize) -> Vec<f32> {
        (0..rows * n_in)
            .map(|k| ((k * 37 + 11) % 101) as f32 / 20.0 - 2.5)
            .collect()
    }

    #[test]
    fn forward_batch_bit_identical_to_scalar() {
        let net = Mlp::new(&[5, 9, 4, 2], Activation::Tanh, Activation::Sigmoid, 11).unwrap();
        // Sizes straddle the 8-lane chunk width: 1, a full chunk, odd tails,
        // and multiples.
        for rows in [1usize, 2, 7, 8, 9, 16, 33, 64] {
            let inputs = test_rows(rows, 5);
            let mut scratch = Scratch::for_net(&net);
            let out = net.forward_batch(&inputs, &mut scratch).to_vec();
            assert_eq!(out.len(), 2 * rows);
            for b in 0..rows {
                let expect = net.forward(&inputs[b * 5..(b + 1) * 5]);
                for o in 0..2 {
                    assert_eq!(
                        out[o * rows + b].to_bits(),
                        expect[o].to_bits(),
                        "row {b} output {o} diverged at batch {rows}"
                    );
                }
            }
        }
    }

    #[test]
    fn predict_batch_bit_identical_to_predict1() {
        let net = Mlp::three_layer(6, 12, 77);
        for rows in [1usize, 7, 13, 64] {
            let inputs = test_rows(rows, 6);
            let mut scratch = Scratch::for_net(&net);
            let mut out = Vec::new();
            net.predict_batch(&inputs, &mut scratch, &mut out);
            assert_eq!(out.len(), rows);
            let mut reference = Scratch::for_net(&net);
            for (b, row) in inputs.chunks_exact(6).enumerate() {
                assert_eq!(
                    out[b].to_bits(),
                    net.predict1(row, &mut reference).to_bits()
                );
            }
        }
    }

    #[test]
    fn batch_and_scalar_paths_share_scratch() {
        // Interleaving scalar and batched passes through one scratch must
        // not corrupt either: the buffers are disjoint.
        let net = Mlp::three_layer(4, 8, 5);
        let mut s = Scratch::for_net(&net);
        let x = [0.3, -0.1, 0.8, 0.2];
        let scalar = net.predict1(&x, &mut s);
        let inputs = test_rows(9, 4);
        let mut out = Vec::new();
        net.predict_batch(&inputs, &mut s, &mut out);
        assert_eq!(scalar.to_bits(), net.predict1(&x, &mut s).to_bits());
        let mut out2 = Vec::new();
        net.predict_batch(&inputs, &mut s, &mut out2);
        assert_eq!(out, out2);
    }

    #[test]
    fn forward_batch_empty_input_yields_empty_output() {
        let net = Mlp::three_layer(3, 4, 0);
        let mut s = Scratch::for_net(&net);
        assert!(net.forward_batch(&[], &mut s).is_empty());
    }

    #[test]
    #[should_panic]
    fn forward_batch_rejects_ragged_input() {
        let net = Mlp::three_layer(3, 4, 0);
        let mut s = Scratch::for_net(&net);
        // 5 values cannot split into rows of 3.
        let _ = net.forward_batch(&[0.0; 5], &mut s);
    }

    #[test]
    #[should_panic(expected = "layer input length")]
    fn mismatched_layer_chain_panics_instead_of_truncating() {
        // Regression: a malformed network whose layer chain disagrees used to
        // zip-truncate in release builds and return garbage predictions. The
        // length invariant is now a hard assert in every profile.
        let mut net = Mlp::new(&[2, 3, 1], Activation::Sigmoid, Activation::Sigmoid, 0).unwrap();
        net.layers[1].n_in = 4;
        net.layers[1].weights = vec![0.25; 4];
        let _ = net.forward(&[0.1, 0.2]);
    }
}
