//! The multi-layer perceptron.

use crate::activation::Activation;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// One fully-connected layer: `out = act(W · in + b)`.
///
/// Weights are stored row-major: `weights[o * n_in + i]` connects input `i`
/// to output neuron `o`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Layer {
    pub(crate) n_in: usize,
    pub(crate) n_out: usize,
    pub(crate) weights: Vec<f32>,
    pub(crate) biases: Vec<f32>,
    pub(crate) activation: Activation,
}

impl Layer {
    fn new(n_in: usize, n_out: usize, activation: Activation, rng: &mut SmallRng) -> Self {
        // Xavier/Glorot uniform initialization.
        let bound = (6.0 / (n_in + n_out) as f32).sqrt();
        let weights = (0..n_in * n_out)
            .map(|_| rng.gen_range(-bound..=bound))
            .collect();
        let biases = vec![0.0; n_out];
        Self {
            n_in,
            n_out,
            weights,
            biases,
            activation,
        }
    }

    /// Number of inputs this layer consumes.
    pub fn n_in(&self) -> usize {
        self.n_in
    }

    /// Number of neurons (outputs) in this layer.
    pub fn n_out(&self) -> usize {
        self.n_out
    }

    /// The weight from input `i` to output neuron `o`.
    pub fn weight(&self, o: usize, i: usize) -> f32 {
        self.weights[o * self.n_in + i]
    }

    /// The bias of output neuron `o`.
    pub fn bias(&self, o: usize) -> f32 {
        self.biases[o]
    }

    /// This layer's activation function.
    pub fn activation_kind(&self) -> Activation {
        self.activation
    }

    /// Forward one layer: `out` must have length `n_out`.
    #[inline]
    pub(crate) fn forward_into(&self, input: &[f32], out: &mut [f32]) {
        debug_assert_eq!(input.len(), self.n_in);
        debug_assert_eq!(out.len(), self.n_out);
        for (o, out_v) in out.iter_mut().enumerate() {
            let row = &self.weights[o * self.n_in..(o + 1) * self.n_in];
            let mut acc = self.biases[o];
            for (w, x) in row.iter().zip(input) {
                acc += w * x;
            }
            *out_v = self.activation.apply(acc);
        }
    }
}

/// A feed-forward multi-layer perceptron.
///
/// The paper's configuration is a *three-layer perceptron*: one input layer,
/// one hidden layer, one output layer — i.e. `Mlp::new(&[n_in, n_hidden, n_out], ..)`.
/// Deeper stacks are supported but unnecessary for reproducing the paper.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Mlp {
    layers: Vec<Layer>,
}

impl Mlp {
    /// Build a network with the given layer sizes (`sizes[0]` inputs,
    /// `sizes.last()` outputs), hidden activation `hidden_act` and output
    /// activation `output_act`, deterministically initialized from `seed`.
    pub fn new(sizes: &[usize], hidden_act: Activation, output_act: Activation, seed: u64) -> Self {
        assert!(
            sizes.len() >= 2,
            "need at least input and output layer sizes"
        );
        assert!(sizes.iter().all(|&s| s > 0), "layer sizes must be non-zero");
        let mut rng = SmallRng::seed_from_u64(seed);
        let n = sizes.len() - 1;
        let layers = (0..n)
            .map(|i| {
                let act = if i + 1 == n { output_act } else { hidden_act };
                Layer::new(sizes[i], sizes[i + 1], act, &mut rng)
            })
            .collect();
        Self { layers }
    }

    /// The paper's default: `inputs -> hidden (sigmoid) -> 1 output (sigmoid)`.
    ///
    /// ```
    /// use ifet_nn::Mlp;
    /// let net = Mlp::three_layer(3, 16, 42);
    /// assert_eq!(net.layer_sizes(), vec![3, 16, 1]);
    /// let certainty = net.forward(&[0.2, 0.9, 0.5])[0];
    /// assert!(certainty > 0.0 && certainty < 1.0);
    /// ```
    pub fn three_layer(n_in: usize, n_hidden: usize, seed: u64) -> Self {
        Self::new(
            &[n_in, n_hidden, 1],
            Activation::Sigmoid,
            Activation::Sigmoid,
            seed,
        )
    }

    /// Number of input features.
    pub fn input_size(&self) -> usize {
        self.layers[0].n_in
    }

    /// Number of outputs.
    pub fn output_size(&self) -> usize {
        self.layers.last().unwrap().n_out
    }

    /// Layer output sizes, input first.
    pub fn layer_sizes(&self) -> Vec<usize> {
        let mut v = vec![self.layers[0].n_in];
        v.extend(self.layers.iter().map(|l| l.n_out));
        v
    }

    /// Total trainable parameter count.
    pub fn num_params(&self) -> usize {
        self.layers
            .iter()
            .map(|l| l.weights.len() + l.biases.len())
            .sum()
    }

    pub(crate) fn layers(&self) -> &[Layer] {
        &self.layers
    }

    /// Read-only access to the layer stack (for introspection tools).
    pub fn layers_ref(&self) -> &[Layer] {
        &self.layers
    }

    /// Overwrite one weight (used by weight-transferring network surgery).
    pub fn set_weight(&mut self, layer: usize, o: usize, i: usize, w: f32) {
        let l = &mut self.layers[layer];
        assert!(o < l.n_out && i < l.n_in);
        l.weights[o * l.n_in + i] = w;
    }

    /// Overwrite one bias.
    pub fn set_bias(&mut self, layer: usize, o: usize, b: f32) {
        let l = &mut self.layers[layer];
        assert!(o < l.n_out);
        l.biases[o] = b;
    }

    pub(crate) fn layers_mut(&mut self) -> &mut [Layer] {
        &mut self.layers
    }

    /// Run the network, allocating the output vector.
    pub fn forward(&self, input: &[f32]) -> Vec<f32> {
        let mut scratch = Scratch::for_net(self);
        self.forward_scratch(input, &mut scratch);
        scratch.output().to_vec()
    }

    /// Run the network reusing `scratch` buffers (no allocation after the
    /// first call) — the hot path for per-voxel classification.
    pub fn forward_scratch<'s>(&self, input: &[f32], scratch: &'s mut Scratch) -> &'s [f32] {
        assert_eq!(
            input.len(),
            self.input_size(),
            "input length {} != network input size {}",
            input.len(),
            self.input_size()
        );
        scratch.ensure(self);
        for (li, layer) in self.layers.iter().enumerate() {
            // Split-borrow: the previous layer's output feeds this layer's buffer.
            let (done, todo) = scratch.activations.split_at_mut(li);
            let layer_input: &[f32] = if li == 0 { input } else { &done[li - 1] };
            layer.forward_into(layer_input, &mut todo[0]);
        }
        scratch.output()
    }

    /// Convenience for single-output networks: forward and take output 0.
    pub fn predict1(&self, input: &[f32], scratch: &mut Scratch) -> f32 {
        self.forward_scratch(input, scratch)[0]
    }

    /// Check the structural invariants a deserialized network must satisfy
    /// before it is safe to run: non-empty layer stack, non-zero layer sizes,
    /// weight/bias buffers of exactly the advertised shape, and consecutive
    /// layers that agree on their interface width.
    ///
    /// `forward_*` index weight rows by shape arithmetic, so feeding a
    /// malformed network (e.g. from a corrupted session artifact) would panic
    /// or read garbage — loaders call this to reject such inputs with a typed
    /// error instead.
    pub fn validate_shape(&self) -> Result<(), String> {
        if self.layers.is_empty() {
            return Err("network has no layers".to_string());
        }
        let mut prev_out: Option<usize> = None;
        for (li, l) in self.layers.iter().enumerate() {
            if l.n_in == 0 || l.n_out == 0 {
                return Err(format!("layer {li} has a zero dimension"));
            }
            let expected = l
                .n_in
                .checked_mul(l.n_out)
                .ok_or_else(|| format!("layer {li} weight count overflows"))?;
            if l.weights.len() != expected {
                return Err(format!(
                    "layer {li} has {} weights, shape {}x{} needs {expected}",
                    l.weights.len(),
                    l.n_out,
                    l.n_in
                ));
            }
            if l.biases.len() != l.n_out {
                return Err(format!(
                    "layer {li} has {} biases for {} outputs",
                    l.biases.len(),
                    l.n_out
                ));
            }
            if let Some(p) = prev_out {
                if p != l.n_in {
                    return Err(format!(
                        "layer {li} consumes {} inputs but layer {} produces {p}",
                        l.n_in,
                        li - 1
                    ));
                }
            }
            prev_out = Some(l.n_out);
        }
        Ok(())
    }

    /// Serialize to a JSON string.
    pub fn to_json(&self) -> String {
        serde_json::to_string(self).expect("Mlp serialization cannot fail")
    }

    /// Deserialize from [`Mlp::to_json`] output.
    pub fn from_json(s: &str) -> Result<Self, serde_json::Error> {
        serde_json::from_str(s)
    }
}

/// Reusable forward-pass buffers: one activation vector per layer.
#[derive(Debug, Clone, Default)]
pub struct Scratch {
    activations: Vec<Vec<f32>>,
}

impl Scratch {
    /// Allocate scratch sized for `net`.
    pub fn for_net(net: &Mlp) -> Self {
        let mut s = Self::default();
        s.ensure(net);
        s
    }

    fn ensure(&mut self, net: &Mlp) {
        if self.activations.len() != net.layers.len()
            || self
                .activations
                .iter()
                .zip(&net.layers)
                .any(|(a, l)| a.len() != l.n_out)
        {
            self.activations = net.layers.iter().map(|l| vec![0.0; l.n_out]).collect();
        }
    }

    /// The last layer's activations from the most recent forward pass.
    pub fn output(&self) -> &[f32] {
        self.activations.last().map(|v| v.as_slice()).unwrap_or(&[])
    }

    /// All per-layer activations (used by the trainer).
    pub(crate) fn activations(&self) -> &[Vec<f32>] {
        &self.activations
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_shapes() {
        let net = Mlp::new(&[3, 8, 2], Activation::Sigmoid, Activation::Identity, 42);
        assert_eq!(net.input_size(), 3);
        assert_eq!(net.output_size(), 2);
        assert_eq!(net.layer_sizes(), vec![3, 8, 2]);
        assert_eq!(net.num_params(), 3 * 8 + 8 + 8 * 2 + 2);
    }

    #[test]
    fn three_layer_is_paper_shape() {
        let net = Mlp::three_layer(5, 10, 0);
        assert_eq!(net.layer_sizes(), vec![5, 10, 1]);
    }

    #[test]
    #[should_panic]
    fn too_few_layers_panics() {
        let _ = Mlp::new(&[4], Activation::Sigmoid, Activation::Sigmoid, 0);
    }

    #[test]
    #[should_panic]
    fn zero_layer_size_panics() {
        let _ = Mlp::new(&[4, 0, 1], Activation::Sigmoid, Activation::Sigmoid, 0);
    }

    #[test]
    fn deterministic_from_seed() {
        let a = Mlp::three_layer(4, 6, 7);
        let b = Mlp::three_layer(4, 6, 7);
        let c = Mlp::three_layer(4, 6, 8);
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn forward_output_in_sigmoid_range() {
        let net = Mlp::three_layer(3, 5, 1);
        let out = net.forward(&[0.1, 0.9, 0.4]);
        assert_eq!(out.len(), 1);
        assert!(out[0] > 0.0 && out[0] < 1.0);
    }

    #[test]
    fn forward_scratch_matches_forward() {
        let net = Mlp::new(&[2, 4, 4, 2], Activation::Tanh, Activation::Identity, 3);
        let x = [0.3, -0.7];
        let a = net.forward(&x);
        let mut s = Scratch::for_net(&net);
        let b = net.forward_scratch(&x, &mut s).to_vec();
        assert_eq!(a, b);
        // Re-run with the same scratch; still consistent.
        let c = net.forward_scratch(&x, &mut s).to_vec();
        assert_eq!(a, c);
    }

    #[test]
    #[should_panic]
    fn wrong_input_length_panics() {
        let net = Mlp::three_layer(3, 4, 0);
        let _ = net.forward(&[1.0, 2.0]);
    }

    #[test]
    fn identity_single_layer_is_affine() {
        // One linear layer must compute exactly W x + b.
        let mut net = Mlp::new(&[2, 1], Activation::Sigmoid, Activation::Identity, 0);
        net.layers_mut()[0].weights = vec![2.0, -1.0];
        net.layers_mut()[0].biases = vec![0.5];
        let y = net.forward(&[3.0, 4.0]);
        assert!((y[0] - (2.0 * 3.0 - 4.0 + 0.5)).abs() < 1e-6);
    }

    #[test]
    fn json_roundtrip() {
        let net = Mlp::three_layer(4, 8, 11);
        let s = net.to_json();
        let back = Mlp::from_json(&s).unwrap();
        assert_eq!(net, back);
        let x = [0.2, 0.4, 0.6, 0.8];
        assert_eq!(net.forward(&x), back.forward(&x));
    }

    #[test]
    fn validate_shape_accepts_trained_and_rejects_corrupt() {
        let net = Mlp::three_layer(3, 5, 9);
        assert!(net.validate_shape().is_ok());

        let mut bad = net.clone();
        bad.layers[0].weights.pop();
        assert!(bad.validate_shape().is_err());

        let mut bad = net.clone();
        bad.layers[1].n_in = 4; // breaks both weight count and chain width
        assert!(bad.validate_shape().is_err());

        let mut bad = net.clone();
        bad.layers[0].biases.push(0.0);
        assert!(bad.validate_shape().is_err());

        let bad = Mlp { layers: Vec::new() };
        assert!(bad.validate_shape().is_err());
    }

    #[test]
    fn scratch_resizes_for_different_net() {
        let a = Mlp::three_layer(2, 3, 0);
        let b = Mlp::new(&[2, 7, 2], Activation::Sigmoid, Activation::Sigmoid, 1);
        let mut s = Scratch::for_net(&a);
        let _ = b.forward_scratch(&[0.1, 0.2], &mut s);
        assert_eq!(s.output().len(), 2);
    }
}
