//! A support vector machine — the alternative learning engine the paper
//! reports trying (Section 8: "We have also used support vector machines and
//! obtained promising results"; Section 3 lists SVMs among the usable
//! supervised techniques whose "cost and performance tradeoffs ... remain to
//! be evaluated" — the ablation benches evaluate exactly that).
//!
//! Implementation: the simplified SMO algorithm (sequential minimal
//! optimization) with linear and RBF kernels, trained on ±1 labels, with a
//! logistic squash for certainty-style outputs compatible with the rest of
//! the system.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Kernel functions.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum Kernel {
    /// Dot product.
    Linear,
    /// Gaussian radial basis function `exp(-gamma * |x - y|²)`.
    Rbf { gamma: f32 },
}

impl Kernel {
    #[inline]
    fn eval(self, a: &[f32], b: &[f32]) -> f32 {
        match self {
            Kernel::Linear => a.iter().zip(b).map(|(x, y)| x * y).sum(),
            Kernel::Rbf { gamma } => {
                let d2: f32 = a.iter().zip(b).map(|(x, y)| (x - y) * (x - y)).sum();
                (-gamma * d2).exp()
            }
        }
    }
}

/// SVM training hyper-parameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SvmParams {
    /// Soft-margin penalty.
    pub c: f32,
    /// KKT violation tolerance.
    pub tol: f32,
    /// Stop after this many passes without any alpha update.
    pub max_passes: usize,
    /// Hard cap on total passes (guards non-separable pathologies).
    pub max_iter: usize,
    pub kernel: Kernel,
    pub seed: u64,
}

impl Default for SvmParams {
    fn default() -> Self {
        Self {
            c: 1.0,
            tol: 1e-3,
            max_passes: 5,
            max_iter: 200,
            kernel: Kernel::Rbf { gamma: 2.0 },
            seed: 0x57A4,
        }
    }
}

/// A trained (binary) support vector machine.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Svm {
    kernel: Kernel,
    /// Support vectors (training rows with non-zero alpha).
    support: Vec<Vec<f32>>,
    /// `alpha_i * y_i` per support vector.
    coeffs: Vec<f32>,
    bias: f32,
}

impl Svm {
    /// Train with simplified SMO. `labels` are class probabilities in
    /// `[0, 1]`; anything `>= 0.5` is the positive class (matching the
    /// painting interface's certainty labels).
    pub fn train(inputs: &[Vec<f32>], labels: &[f32], params: SvmParams) -> Self {
        assert_eq!(inputs.len(), labels.len(), "inputs/labels length mismatch");
        assert!(!inputs.is_empty(), "cannot train an SVM on zero samples");
        let n = inputs.len();
        let dim = inputs[0].len();
        for row in inputs {
            assert_eq!(row.len(), dim, "inconsistent feature lengths");
        }
        let y: Vec<f32> = labels
            .iter()
            .map(|&l| if l >= 0.5 { 1.0 } else { -1.0 })
            .collect();
        assert!(
            y.iter().any(|&v| v > 0.0) && y.iter().any(|&v| v < 0.0),
            "SVM training needs both classes"
        );

        let mut rng = SmallRng::seed_from_u64(params.seed);
        let mut alphas = vec![0.0f32; n];
        let mut b = 0.0f32;

        // Cache the kernel matrix for small training sets (painted samples
        // are a few hundred rows — n² fits easily).
        let kmat: Vec<f32> = (0..n)
            .flat_map(|i| (0..n).map(move |j| (i, j)))
            .map(|(i, j)| params.kernel.eval(&inputs[i], &inputs[j]))
            .collect();
        let k = |i: usize, j: usize| kmat[i * n + j];

        let f = |alphas: &[f32], b: f32, i: usize| -> f32 {
            let mut acc = b;
            for j in 0..n {
                if alphas[j] != 0.0 {
                    acc += alphas[j] * y[j] * k(j, i);
                }
            }
            acc
        };

        let mut passes = 0;
        let mut iter = 0;
        while passes < params.max_passes && iter < params.max_iter {
            let mut changed = 0;
            for i in 0..n {
                let ei = f(&alphas, b, i) - y[i];
                let violates = (y[i] * ei < -params.tol && alphas[i] < params.c)
                    || (y[i] * ei > params.tol && alphas[i] > 0.0);
                if !violates {
                    continue;
                }
                // Pick a random j != i.
                let mut j = rng.gen_range(0..n - 1);
                if j >= i {
                    j += 1;
                }
                let ej = f(&alphas, b, j) - y[j];
                let (ai_old, aj_old) = (alphas[i], alphas[j]);

                let (lo, hi) = if y[i] != y[j] {
                    (
                        (aj_old - ai_old).max(0.0),
                        (params.c + aj_old - ai_old).min(params.c),
                    )
                } else {
                    (
                        (ai_old + aj_old - params.c).max(0.0),
                        (ai_old + aj_old).min(params.c),
                    )
                };
                // Degenerate or inverted box (float error can push hi just
                // below lo): nothing to optimize on this pair.
                if hi - lo < 1e-9 {
                    continue;
                }
                let eta = 2.0 * k(i, j) - k(i, i) - k(j, j);
                if eta >= 0.0 {
                    continue;
                }
                let mut aj_new = aj_old - y[j] * (ei - ej) / eta;
                aj_new = aj_new.clamp(lo, hi);
                if (aj_new - aj_old).abs() < 1e-5 {
                    continue;
                }
                let ai_new = ai_old + y[i] * y[j] * (aj_old - aj_new);

                let b1 = b
                    - ei
                    - y[i] * (ai_new - ai_old) * k(i, i)
                    - y[j] * (aj_new - aj_old) * k(i, j);
                let b2 = b
                    - ej
                    - y[i] * (ai_new - ai_old) * k(i, j)
                    - y[j] * (aj_new - aj_old) * k(j, j);
                b = if ai_new > 0.0 && ai_new < params.c {
                    b1
                } else if aj_new > 0.0 && aj_new < params.c {
                    b2
                } else {
                    0.5 * (b1 + b2)
                };
                alphas[i] = ai_new;
                alphas[j] = aj_new;
                changed += 1;
            }
            if changed == 0 {
                passes += 1;
            } else {
                passes = 0;
            }
            iter += 1;
        }

        let mut support = Vec::new();
        let mut coeffs = Vec::new();
        for i in 0..n {
            if alphas[i] > 1e-7 {
                support.push(inputs[i].clone());
                coeffs.push(alphas[i] * y[i]);
            }
        }
        Self {
            kernel: params.kernel,
            support,
            coeffs,
            bias: b,
        }
    }

    /// Raw decision value (positive → positive class).
    pub fn decision(&self, x: &[f32]) -> f32 {
        let mut acc = self.bias;
        for (sv, &c) in self.support.iter().zip(&self.coeffs) {
            acc += c * self.kernel.eval(sv, x);
        }
        acc
    }

    /// Certainty-style output in `(0, 1)` (logistic squash of the margin),
    /// interchangeable with the neural network's output.
    pub fn predict(&self, x: &[f32]) -> f32 {
        1.0 / (1.0 + (-2.0 * self.decision(x)).exp())
    }

    /// Number of support vectors retained.
    pub fn num_support_vectors(&self) -> usize {
        self.support.len()
    }

    /// Check the invariants a deserialized SVM must satisfy to be safe and
    /// meaningful to evaluate on `expected_dim`-feature inputs: one
    /// coefficient per support vector, and every support vector of the
    /// expected width. Used by artifact loaders to reject corrupt models
    /// with a typed error instead of silently mis-predicting.
    pub fn validate_shape(&self, expected_dim: usize) -> Result<(), String> {
        if self.coeffs.len() != self.support.len() {
            return Err(format!(
                "{} coefficients for {} support vectors",
                self.coeffs.len(),
                self.support.len()
            ));
        }
        for (i, sv) in self.support.iter().enumerate() {
            if sv.len() != expected_dim {
                return Err(format!(
                    "support vector {i} has {} features, expected {expected_dim}",
                    sv.len()
                ));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn linear_set() -> (Vec<Vec<f32>>, Vec<f32>) {
        // Separable by x0 + x1 > 1.
        let mut inputs = Vec::new();
        let mut labels = Vec::new();
        for i in 0..10 {
            for j in 0..10 {
                let x = [i as f32 / 10.0, j as f32 / 10.0];
                inputs.push(x.to_vec());
                labels.push(if x[0] + x[1] > 1.0 { 1.0 } else { 0.0 });
            }
        }
        (inputs, labels)
    }

    #[test]
    fn learns_linear_separation() {
        let (inputs, labels) = linear_set();
        let svm = Svm::train(
            &inputs,
            &labels,
            SvmParams {
                kernel: Kernel::Linear,
                c: 10.0,
                ..Default::default()
            },
        );
        let correct = inputs
            .iter()
            .zip(&labels)
            .filter(|(x, &l)| (svm.predict(x) >= 0.5) == (l >= 0.5))
            .count();
        assert!(correct >= 95, "accuracy {correct}/100");
    }

    #[test]
    fn rbf_learns_xor() {
        // XOR: not linearly separable, needs the RBF kernel.
        let inputs = vec![
            vec![0.0, 0.0],
            vec![0.0, 1.0],
            vec![1.0, 0.0],
            vec![1.0, 1.0],
        ];
        let labels = vec![0.0, 1.0, 1.0, 0.0];
        let svm = Svm::train(
            &inputs,
            &labels,
            SvmParams {
                kernel: Kernel::Rbf { gamma: 4.0 },
                c: 50.0,
                max_passes: 20,
                ..Default::default()
            },
        );
        for (x, &l) in inputs.iter().zip(&labels) {
            let p = svm.predict(x);
            assert_eq!(p >= 0.5, l >= 0.5, "at {x:?}: {p} vs {l}");
        }
    }

    #[test]
    fn predict_is_in_unit_interval() {
        let (inputs, labels) = linear_set();
        let svm = Svm::train(&inputs, &labels, SvmParams::default());
        for x in &inputs {
            let p = svm.predict(x);
            assert!(p > 0.0 && p < 1.0);
        }
    }

    #[test]
    fn decision_sign_matches_predict() {
        let (inputs, labels) = linear_set();
        let svm = Svm::train(&inputs, &labels, SvmParams::default());
        for x in &inputs {
            assert_eq!(svm.decision(x) > 0.0, svm.predict(x) > 0.5);
        }
    }

    #[test]
    fn training_is_deterministic() {
        let (inputs, labels) = linear_set();
        let a = Svm::train(&inputs, &labels, SvmParams::default());
        let b = Svm::train(&inputs, &labels, SvmParams::default());
        assert_eq!(a.num_support_vectors(), b.num_support_vectors());
        assert_eq!(a.decision(&inputs[3]), b.decision(&inputs[3]));
    }

    #[test]
    fn keeps_only_a_subset_as_support_vectors() {
        let (inputs, labels) = linear_set();
        let svm = Svm::train(
            &inputs,
            &labels,
            SvmParams {
                kernel: Kernel::Linear,
                c: 1.0,
                ..Default::default()
            },
        );
        assert!(svm.num_support_vectors() < inputs.len());
        assert!(svm.num_support_vectors() > 0);
    }

    #[test]
    fn serde_roundtrip() {
        let (inputs, labels) = linear_set();
        let svm = Svm::train(&inputs, &labels, SvmParams::default());
        let json = serde_json::to_string(&svm).unwrap();
        let back: Svm = serde_json::from_str(&json).unwrap();
        assert_eq!(svm.decision(&inputs[0]), back.decision(&inputs[0]));
    }

    #[test]
    #[should_panic]
    fn single_class_panics() {
        let inputs = vec![vec![0.0], vec![1.0]];
        let labels = vec![1.0, 1.0];
        let _ = Svm::train(&inputs, &labels, SvmParams::default());
    }

    #[test]
    #[should_panic]
    fn empty_training_panics() {
        let _ = Svm::train(&[], &[], SvmParams::default());
    }
}
