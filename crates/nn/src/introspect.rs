//! Opening the black box: network introspection and input pruning.
//!
//! The paper's interface lets the user "remove data properties in an input
//! vector if they are considered unimportant" (Section 6, citing the
//! authors' companion work on data-driven visualization of neural networks
//! \[26\]); "the input data for the previous network would be transferred to
//! the new network". This module provides:
//!
//! - [`input_importance`] — a first-order measure of how much each input
//!   feature drives the output (connection-weight products, Garson-style),
//! - [`sensitivity`] — an empirical measure: output variance under
//!   perturbation of one input across probe points,
//! - [`drop_input`] — build a smaller network
//!   with one input removed, *transferring* all surviving weights so
//!   training resumes instead of restarting.

#![allow(clippy::needless_range_loop)] // parallel-array indexing reads clearer here

use crate::mlp::{Mlp, Scratch};

/// Connection-weight importance of each input feature: for input `i`, the
/// sum over hidden units `h` of `|w_ih| * |v_h|` where `v_h` aggregates the
/// hidden unit's outgoing magnitude. Normalized to sum to 1.
pub fn input_importance(net: &Mlp) -> Vec<f64> {
    let layers = net.layers_ref();
    assert!(!layers.is_empty());
    let first = &layers[0];

    // Aggregate each first-layer hidden unit's downstream magnitude by
    // propagating absolute weights back from the output.
    let mut downstream = vec![1.0f64; layers.last().unwrap().n_out()];
    for layer in layers.iter().skip(1).rev() {
        let mut prev = vec![0.0f64; layer.n_in()];
        for o in 0..layer.n_out() {
            for i in 0..layer.n_in() {
                prev[i] += layer.weight(o, i).abs() as f64 * downstream[o];
            }
        }
        downstream = prev;
    }

    let mut importance = vec![0.0f64; first.n_in()];
    for h in 0..first.n_out() {
        for i in 0..first.n_in() {
            importance[i] += first.weight(h, i).abs() as f64 * downstream[h];
        }
    }
    let total: f64 = importance.iter().sum();
    if total > 0.0 {
        for v in &mut importance {
            *v /= total;
        }
    }
    importance
}

/// Empirical sensitivity: mean absolute output change when input `k` is
/// perturbed by ±`delta` around each probe point. Normalized to sum to 1
/// across inputs.
pub fn sensitivity(net: &Mlp, probes: &[Vec<f32>], delta: f32) -> Vec<f64> {
    assert!(!probes.is_empty(), "need at least one probe point");
    let n_in = net.input_size();
    let mut scratch = Scratch::for_net(net);
    let mut out = vec![0.0f64; n_in];
    for p in probes {
        assert_eq!(p.len(), n_in);
        for k in 0..n_in {
            let mut hi = p.clone();
            hi[k] += delta;
            let mut lo = p.clone();
            lo[k] -= delta;
            let yh = net.forward_scratch(&hi, &mut scratch)[0];
            let yl = net.forward_scratch(&lo, &mut scratch)[0];
            out[k] += (yh - yl).abs() as f64;
        }
    }
    let total: f64 = out.iter().sum();
    if total > 0.0 {
        for v in &mut out {
            *v /= total;
        }
    }
    out
}

/// Build a network with input feature `k` removed, transferring every other
/// weight unchanged. The new network computes exactly what the old one would
/// with input `k` fixed at 0.
pub fn drop_input(net: &Mlp, k: usize) -> Mlp {
    let n_in = net.input_size();
    assert!(k < n_in, "input {k} out of range ({n_in} inputs)");
    assert!(n_in > 1, "cannot drop the only input");
    let layers = net.layers_ref();

    let mut sizes: Vec<usize> = vec![n_in - 1];
    sizes.extend(layers.iter().map(|l| l.n_out()));
    // Activations: assume homogeneous hidden activation (true for all
    // networks this workspace builds).
    let hidden_act = layers[0].activation_kind();
    let out_act = layers.last().unwrap().activation_kind();
    let mut new = Mlp::new(&sizes, hidden_act, out_act, 0)
        .expect("sizes derived from a valid network are valid");

    for (li, layer) in layers.iter().enumerate() {
        for o in 0..layer.n_out() {
            let mut new_i = 0;
            for i in 0..layer.n_in() {
                if li == 0 && i == k {
                    continue;
                }
                new.set_weight(li, o, new_i, layer.weight(o, i));
                new_i += 1;
            }
            new.set_bias(li, o, layer.bias(o));
        }
    }
    new
}

/// Ranked `(input index, importance)` pairs, most important first.
pub fn rank_inputs(net: &Mlp) -> Vec<(usize, f64)> {
    let imp = input_importance(net);
    let mut ranked: Vec<(usize, f64)> = imp.into_iter().enumerate().collect();
    ranked.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap());
    ranked
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::train::{TrainParams, Trainer, TrainingSet};

    /// Train a net where only input 0 matters: y = x0.
    fn x0_only_net() -> Mlp {
        let mut net = Mlp::three_layer(3, 8, 42);
        let mut tr = Trainer::new(TrainParams::default());
        let mut set = TrainingSet::new();
        for i in 0..64 {
            let x0 = (i % 8) as f32 / 8.0;
            let x1 = ((i / 8) % 4) as f32 / 4.0;
            let x2 = (i % 5) as f32 / 5.0;
            set.add1(vec![x0, x1, x2], if x0 > 0.5 { 1.0 } else { 0.0 });
        }
        tr.train(&mut net, &set, 400);
        net
    }

    #[test]
    fn importance_sums_to_one() {
        let net = Mlp::three_layer(4, 6, 1);
        let imp = input_importance(&net);
        assert_eq!(imp.len(), 4);
        assert!((imp.iter().sum::<f64>() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn trained_importance_favours_the_informative_input() {
        let net = x0_only_net();
        let imp = input_importance(&net);
        assert!(
            imp[0] > imp[1] && imp[0] > imp[2],
            "input 0 should dominate: {imp:?}"
        );
    }

    #[test]
    fn sensitivity_favours_the_informative_input() {
        let net = x0_only_net();
        let probes: Vec<Vec<f32>> = (0..16)
            .map(|i| vec![(i % 4) as f32 / 4.0, (i / 4) as f32 / 4.0, 0.5])
            .collect();
        let s = sensitivity(&net, &probes, 0.1);
        assert!(s[0] > s[1] && s[0] > s[2], "{s:?}");
        assert!((s.iter().sum::<f64>() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn rank_inputs_orders_descending() {
        let net = x0_only_net();
        let ranked = rank_inputs(&net);
        assert_eq!(ranked[0].0, 0);
        for w in ranked.windows(2) {
            assert!(w[0].1 >= w[1].1);
        }
    }

    #[test]
    fn drop_input_matches_zeroed_input() {
        let net = x0_only_net();
        let smaller = drop_input(&net, 2);
        assert_eq!(smaller.input_size(), 2);
        for &(a, b) in &[(0.1f32, 0.9f32), (0.7, 0.3), (0.5, 0.5)] {
            let full = net.forward(&[a, b, 0.0])[0];
            let dropped = smaller.forward(&[a, b])[0];
            assert!(
                (full - dropped).abs() < 1e-6,
                "mismatch: {full} vs {dropped}"
            );
        }
    }

    #[test]
    fn drop_then_continue_training_works() {
        // The Section 6 workflow: shrink the network, keep training.
        let net = x0_only_net();
        let mut smaller = drop_input(&net, 1);
        let mut tr = Trainer::new(TrainParams::default());
        let mut set = TrainingSet::new();
        for i in 0..32 {
            let x0 = (i % 8) as f32 / 8.0;
            set.add1(vec![x0, 0.5], if x0 > 0.5 { 1.0 } else { 0.0 });
        }
        let before = tr.evaluate(&smaller, &set);
        tr.train(&mut smaller, &set, 100);
        let after = tr.evaluate(&smaller, &set);
        assert!(after <= before + 1e-4);
    }

    #[test]
    #[should_panic]
    fn drop_out_of_range_panics() {
        let net = Mlp::three_layer(2, 3, 0);
        let _ = drop_input(&net, 5);
    }

    #[test]
    #[should_panic]
    fn drop_last_input_panics() {
        let net = Mlp::three_layer(1, 3, 0);
        let _ = drop_input(&net, 0);
    }
}
