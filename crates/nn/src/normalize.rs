//! Per-feature input normalization.
//!
//! Neural-network inputs assembled from heterogeneous data properties (raw
//! scalar values, cumulative-histogram fractions, time-step numbers, shell
//! samples) live on wildly different scales; min-max scaling each feature
//! into `[0, 1]` keeps back-propagation well-conditioned.

use serde::{Deserialize, Serialize};

/// Min-max normalizer fitted per feature.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Normalizer {
    lo: Vec<f32>,
    hi: Vec<f32>,
}

impl Normalizer {
    /// Fit from rows of equal-length feature vectors.
    pub fn fit(rows: &[Vec<f32>]) -> Self {
        assert!(!rows.is_empty(), "cannot fit a normalizer on zero rows");
        let n = rows[0].len();
        let mut lo = vec![f32::INFINITY; n];
        let mut hi = vec![f32::NEG_INFINITY; n];
        for row in rows {
            assert_eq!(row.len(), n, "inconsistent feature-vector lengths");
            for (k, &v) in row.iter().enumerate() {
                if v.is_nan() {
                    continue;
                }
                lo[k] = lo[k].min(v);
                hi[k] = hi[k].max(v);
            }
        }
        // Features never observed finite collapse to [0, 0].
        for k in 0..n {
            if lo[k] > hi[k] {
                lo[k] = 0.0;
                hi[k] = 0.0;
            }
        }
        Self { lo, hi }
    }

    /// Construct with explicit per-feature ranges.
    pub fn from_ranges(ranges: &[(f32, f32)]) -> Self {
        let lo = ranges.iter().map(|r| r.0).collect();
        let hi = ranges.iter().map(|r| r.1).collect();
        Self { lo, hi }
    }

    /// Identity normalizer (all features pass through unchanged).
    pub fn identity(n: usize) -> Self {
        Self {
            lo: vec![0.0; n],
            hi: vec![1.0; n],
        }
    }

    /// Number of features.
    pub fn num_features(&self) -> usize {
        self.lo.len()
    }

    /// Normalize in place: each feature mapped to `[0, 1]` by its fitted
    /// range (values outside the range extrapolate linearly; constant
    /// features map to 0).
    pub fn apply(&self, row: &mut [f32]) {
        assert_eq!(row.len(), self.lo.len(), "feature count mismatch");
        for (k, v) in row.iter_mut().enumerate() {
            let span = self.hi[k] - self.lo[k];
            *v = if span <= 0.0 {
                0.0
            } else {
                (*v - self.lo[k]) / span
            };
        }
    }

    /// Normalized copy.
    pub fn transform(&self, row: &[f32]) -> Vec<f32> {
        let mut out = row.to_vec();
        self.apply(&mut out);
        out
    }

    /// Invert normalization for feature `k`.
    pub fn denormalize(&self, k: usize, v: f32) -> f32 {
        self.lo[k] + v * (self.hi[k] - self.lo[k])
    }

    /// The fitted `(lo, hi)` for feature `k`.
    pub fn range(&self, k: usize) -> (f32, f32) {
        (self.lo[k], self.hi[k])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fit_and_transform_unit_range() {
        let rows = vec![vec![0.0, 10.0], vec![2.0, 20.0], vec![1.0, 15.0]];
        let n = Normalizer::fit(&rows);
        assert_eq!(n.num_features(), 2);
        assert_eq!(n.transform(&[0.0, 10.0]), vec![0.0, 0.0]);
        assert_eq!(n.transform(&[2.0, 20.0]), vec![1.0, 1.0]);
        assert_eq!(n.transform(&[1.0, 15.0]), vec![0.5, 0.5]);
    }

    #[test]
    fn out_of_range_extrapolates() {
        let n = Normalizer::from_ranges(&[(0.0, 10.0)]);
        assert_eq!(n.transform(&[20.0]), vec![2.0]);
        assert_eq!(n.transform(&[-10.0]), vec![-1.0]);
    }

    #[test]
    fn constant_feature_maps_to_zero() {
        let rows = vec![vec![5.0], vec![5.0]];
        let n = Normalizer::fit(&rows);
        assert_eq!(n.transform(&[5.0]), vec![0.0]);
        assert_eq!(n.transform(&[99.0]), vec![0.0]);
    }

    #[test]
    fn nan_rows_ignored_in_fit() {
        let rows = vec![vec![f32::NAN], vec![1.0], vec![3.0]];
        let n = Normalizer::fit(&rows);
        assert_eq!(n.range(0), (1.0, 3.0));
    }

    #[test]
    fn identity_passthrough() {
        let n = Normalizer::identity(3);
        assert_eq!(n.transform(&[0.1, 0.5, 0.9]), vec![0.1, 0.5, 0.9]);
    }

    #[test]
    fn denormalize_inverts() {
        let n = Normalizer::from_ranges(&[(2.0, 6.0)]);
        let t = n.transform(&[5.0])[0];
        assert!((n.denormalize(0, t) - 5.0).abs() < 1e-6);
    }

    #[test]
    #[should_panic]
    fn empty_fit_panics() {
        let _ = Normalizer::fit(&[]);
    }

    #[test]
    #[should_panic]
    fn ragged_rows_panic() {
        let _ = Normalizer::fit(&[vec![1.0], vec![1.0, 2.0]]);
    }

    #[test]
    #[should_panic]
    fn apply_wrong_len_panics() {
        let n = Normalizer::identity(2);
        let mut row = vec![1.0];
        n.apply(&mut row);
    }
}
