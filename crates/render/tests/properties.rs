//! Property-based tests for the renderer.

use ifet_render::{Camera, Image, RenderParams, Renderer};
use ifet_tf::{ColorMap, TransferFunction1D};
use ifet_volume::{Dims3, ScalarVolume};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn camera_rays_unit_and_parallel(az in 0.0f32..std::f32::consts::TAU, el in -1.4f32..1.4) {
        let cam = Camera::framing(Dims3::cube(16), az, el);
        let (_, d1) = cam.ray(0, 0, 9, 9);
        let (_, d2) = cam.ray(8, 8, 9, 9);
        let len = (d1[0] * d1[0] + d1[1] * d1[1] + d1[2] * d1[2]).sqrt();
        prop_assert!((len - 1.0).abs() < 1e-4);
        prop_assert_eq!(d1, d2); // orthographic
    }

    #[test]
    fn rendered_pixels_always_valid(az in 0.0f32..std::f32::consts::TAU, el in -1.2f32..1.2,
                                    band_lo in 0.0f32..0.8) {
        let vol = ScalarVolume::from_fn(Dims3::cube(10), |x, y, z| {
            ((x + y + z) % 5) as f32 / 4.0
        });
        let tf = TransferFunction1D::band(0.0, 1.0, band_lo, 1.0, 0.7);
        let cam = Camera::framing(vol.dims(), az, el);
        let img = Renderer::default().render(&vol, &tf, ColorMap::Rainbow, &cam, 12, 12);
        for y in 0..12 {
            for x in 0..12 {
                for c in img.pixel(x, y) {
                    prop_assert!((0.0..=1.0).contains(&c) && c.is_finite());
                }
            }
        }
    }

    #[test]
    fn higher_opacity_scale_never_darkens(scale in 0.1f32..0.9) {
        let vol = ScalarVolume::from_fn(Dims3::cube(10), |x, _, _| x as f32 / 9.0);
        let tf = TransferFunction1D::band(0.0, 1.0, 0.3, 1.0, 0.5);
        let cam = Camera::framing(vol.dims(), 0.5, 0.3);
        let mut weak = Renderer::default();
        weak.params.shading = false;
        weak.params.opacity_scale = scale;
        let mut strong = weak.clone();
        strong.params.opacity_scale = (scale * 1.5).min(1.0);
        let a = weak.render(&vol, &tf, ColorMap::Grayscale, &cam, 10, 10);
        let b = strong.render(&vol, &tf, ColorMap::Grayscale, &cam, 10, 10);
        prop_assert!(b.mean_luminance() >= a.mean_luminance() - 1e-5);
    }

    #[test]
    fn background_shows_through_transparent_tf(bg_r in 0.0f32..1.0, bg_g in 0.0f32..1.0) {
        let vol = ScalarVolume::filled(Dims3::cube(8), 0.5);
        let tf = TransferFunction1D::transparent(0.0, 1.0);
        let cam = Camera::framing(vol.dims(), 1.0, 0.5);
        let r = Renderer::new(RenderParams {
            background: [bg_r, bg_g, 0.0],
            ..Default::default()
        });
        let img = r.render(&vol, &tf, ColorMap::Grayscale, &cam, 8, 8);
        let p = img.pixel(4, 4);
        prop_assert!((p[0] - bg_r).abs() < 1e-4);
        prop_assert!((p[1] - bg_g).abs() < 1e-4);
    }

    #[test]
    fn image_mse_is_symmetric_and_zero_on_self(seed in any::<u64>()) {
        let mut a = Image::new(6, 6);
        let mut b = Image::new(6, 6);
        for y in 0..6 {
            for x in 0..6 {
                let h = (seed ^ (x as u64 * 7 + y as u64 * 13)) as f32;
                a.set_pixel(x, y, [(h % 7.0) / 7.0, 0.5, 0.2]);
                b.set_pixel(x, y, [(h % 5.0) / 5.0, 0.1, 0.9]);
            }
        }
        prop_assert_eq!(a.mse(&a), 0.0);
        prop_assert!((a.mse(&b) - b.mse(&a)).abs() < 1e-12);
    }

    #[test]
    fn ppm_size_matches_dimensions(w in 1usize..20, h in 1usize..20) {
        let img = Image::new(w, h);
        let ppm = img.to_ppm();
        let header = format!("P6\n{w} {h}\n255\n");
        prop_assert_eq!(ppm.len(), header.len() + w * h * 3);
    }
}
