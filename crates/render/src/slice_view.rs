//! Axis-aligned slice views — the lower row of the paper's multi-view
//! interface (Section 6): the user paints on "three axis-aligned slices",
//! sees classification feedback per slice, and inspects the data in 2D.
//!
//! Headless equivalents: render a slice as a grayscale or color-mapped
//! image, overlay painted voxels as colored marks, and overlay a per-slice
//! certainty field as a red tint.

use crate::image::Image;
use ifet_tf::ColorMap;
use ifet_volume::ScalarVolume;

/// Which axis the slice cuts across.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SliceAxis {
    X,
    Y,
    Z,
}

/// Extract slice data for an axis: `(width, height, row-major values)`.
pub fn slice_data(vol: &ScalarVolume, axis: SliceAxis, k: usize) -> (usize, usize, Vec<f32>) {
    match axis {
        SliceAxis::X => vol.slice_x(k),
        SliceAxis::Y => vol.slice_y(k),
        SliceAxis::Z => vol.slice_z(k),
    }
}

/// Render a slice through a color map, normalized to the *volume's* global
/// range so slices are comparable.
pub fn render_slice(vol: &ScalarVolume, axis: SliceAxis, k: usize, cmap: ColorMap) -> Image {
    let (w, h, data) = slice_data(vol, axis, k);
    let (lo, hi) = vol.value_range();
    let mut img = Image::new(w, h);
    for y in 0..h {
        for x in 0..w {
            img.set_pixel(x, y, cmap.sample_in(data[x + w * y], lo, hi));
        }
    }
    img
}

/// Paint marks onto a z-slice image: positives in green, negatives in blue
/// (the "brushes of different color"). Marks off this slice are ignored.
pub fn overlay_paints_z(
    img: &mut Image,
    k: usize,
    positives: &[(usize, usize, usize)],
    negatives: &[(usize, usize, usize)],
) {
    for &(x, y, z) in positives {
        if z == k && x < img.width() && y < img.height() {
            img.set_pixel(x, y, [0.1, 1.0, 0.1]);
        }
    }
    for &(x, y, z) in negatives {
        if z == k && x < img.width() && y < img.height() {
            img.set_pixel(x, y, [0.1, 0.1, 1.0]);
        }
    }
}

/// Tint a slice image by a certainty field (row-major, `[0, 1]`): certain
/// voxels blend toward red — the immediate per-slice feedback of Section 6.
pub fn overlay_certainty(img: &mut Image, certainty: &[f32]) {
    let (w, h) = (img.width(), img.height());
    assert_eq!(certainty.len(), w * h, "certainty field size mismatch");
    for y in 0..h {
        for x in 0..w {
            let c = certainty[x + w * y].clamp(0.0, 1.0);
            if c > 0.0 {
                let p = img.pixel(x, y);
                img.set_pixel(
                    x,
                    y,
                    [p[0] * (1.0 - c) + c, p[1] * (1.0 - c), p[2] * (1.0 - c)],
                );
            }
        }
    }
}

/// The interface's lower row: the three axis-aligned mid-slices as images.
pub fn three_view(vol: &ScalarVolume, cmap: ColorMap) -> [Image; 3] {
    let d = vol.dims();
    [
        render_slice(vol, SliceAxis::X, d.nx / 2, cmap),
        render_slice(vol, SliceAxis::Y, d.ny / 2, cmap),
        render_slice(vol, SliceAxis::Z, d.nz / 2, cmap),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use ifet_volume::Dims3;

    fn ramp() -> ScalarVolume {
        ScalarVolume::from_fn(Dims3::new(6, 8, 10), |x, y, z| (x + y + z) as f32)
    }

    #[test]
    fn slice_dimensions_per_axis() {
        let v = ramp();
        let (w, h, _) = slice_data(&v, SliceAxis::X, 0);
        assert_eq!((w, h), (8, 10));
        let (w, h, _) = slice_data(&v, SliceAxis::Y, 0);
        assert_eq!((w, h), (6, 10));
        let (w, h, _) = slice_data(&v, SliceAxis::Z, 0);
        assert_eq!((w, h), (6, 8));
    }

    #[test]
    fn rendered_slice_uses_global_range() {
        let v = ramp();
        // Slice z=0 has max value 12 while the global max is 21: its
        // brightest pixel must NOT be pure white.
        let img = render_slice(&v, SliceAxis::Z, 0, ColorMap::Grayscale);
        let brightest = img.pixel(5, 7);
        assert!(brightest[0] < 0.99, "{brightest:?}");
        // But the global max voxel on the last slice is white.
        let img_last = render_slice(&v, SliceAxis::Z, 9, ColorMap::Grayscale);
        assert!(img_last.pixel(5, 7)[0] > 0.99);
    }

    #[test]
    fn paint_overlay_marks_only_matching_slice() {
        let v = ramp();
        let mut img = render_slice(&v, SliceAxis::Z, 3, ColorMap::Grayscale);
        overlay_paints_z(&mut img, 3, &[(1, 1, 3)], &[(2, 2, 4)]);
        assert_eq!(img.pixel(1, 1), [0.1, 1.0, 0.1]); // on-slice positive
        let p = img.pixel(2, 2);
        assert_ne!(p, [0.1, 0.1, 1.0], "off-slice negative must not draw");
    }

    #[test]
    fn certainty_overlay_reddens() {
        let v = ramp();
        let mut img = render_slice(&v, SliceAxis::Z, 0, ColorMap::Grayscale);
        let mut field = vec![0.0f32; 6 * 8];
        field[0] = 1.0; // pixel (0,0) fully certain
        overlay_certainty(&mut img, &field);
        let p = img.pixel(0, 0);
        assert!(p[0] > 0.99 && p[1] < 0.01, "{p:?}");
        // Unmarked pixel unchanged (certainty 0).
        let q = img.pixel(3, 3);
        assert_eq!(q[0], q[1]);
    }

    #[test]
    fn three_view_shapes() {
        let v = ramp();
        let [ix, iy, iz] = three_view(&v, ColorMap::Rainbow);
        assert_eq!((ix.width(), ix.height()), (8, 10));
        assert_eq!((iy.width(), iy.height()), (6, 10));
        assert_eq!((iz.width(), iz.height()), (6, 8));
    }

    #[test]
    #[should_panic]
    fn certainty_size_mismatch_panics() {
        let v = ramp();
        let mut img = render_slice(&v, SliceAxis::Z, 0, ColorMap::Grayscale);
        overlay_certainty(&mut img, &[0.5; 3]);
    }
}
