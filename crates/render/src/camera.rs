//! An orbiting look-at camera with orthographic ray generation.

use ifet_volume::Dims3;

fn cross(a: [f32; 3], b: [f32; 3]) -> [f32; 3] {
    [
        a[1] * b[2] - a[2] * b[1],
        a[2] * b[0] - a[0] * b[2],
        a[0] * b[1] - a[1] * b[0],
    ]
}

fn normalize(v: [f32; 3]) -> [f32; 3] {
    let n = (v[0] * v[0] + v[1] * v[1] + v[2] * v[2]).sqrt();
    if n < 1e-12 {
        [0.0, 0.0, 1.0]
    } else {
        [v[0] / n, v[1] / n, v[2] / n]
    }
}

/// Projection model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Projection {
    /// Parallel rays; `half_extent` sets the window half-height in voxels.
    Orthographic,
    /// Rays diverge from the eye; field-of-view half-angle in radians.
    Perspective { fov_half: f32 },
}

/// Camera orbiting the center of a volume.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Camera {
    /// Look-at target (volume center).
    pub target: [f32; 3],
    /// Azimuth angle in radians (rotation about +z through the target).
    pub azimuth: f32,
    /// Elevation angle in radians above the xy-plane.
    pub elevation: f32,
    /// Distance from the target.
    pub distance: f32,
    /// Half-height of the orthographic view window in voxels.
    pub half_extent: f32,
    /// Projection model.
    pub projection: Projection,
}

impl Camera {
    /// A camera framing the whole volume from azimuth/elevation (radians).
    pub fn framing(dims: Dims3, azimuth: f32, elevation: f32) -> Self {
        let target = [
            (dims.nx as f32 - 1.0) / 2.0,
            (dims.ny as f32 - 1.0) / 2.0,
            (dims.nz as f32 - 1.0) / 2.0,
        ];
        let diag = ((dims.nx * dims.nx + dims.ny * dims.ny + dims.nz * dims.nz) as f32).sqrt();
        Self {
            target,
            azimuth,
            elevation,
            distance: diag,
            half_extent: diag * 0.5,
            projection: Projection::Orthographic,
        }
    }

    /// Same framing with a perspective projection (the FOV chosen so the
    /// volume roughly fills the window at the camera distance).
    pub fn framing_perspective(dims: Dims3, azimuth: f32, elevation: f32) -> Self {
        let mut c = Self::framing(dims, azimuth, elevation);
        c.projection = Projection::Perspective {
            fov_half: (c.half_extent / c.distance).atan(),
        };
        c
    }

    /// Camera position in voxel space.
    pub fn position(&self) -> [f32; 3] {
        let (ca, sa) = (self.azimuth.cos(), self.azimuth.sin());
        let (ce, se) = (self.elevation.cos(), self.elevation.sin());
        [
            self.target[0] + self.distance * ce * ca,
            self.target[1] + self.distance * ce * sa,
            self.target[2] + self.distance * se,
        ]
    }

    /// Unit view direction (from the camera toward the target).
    pub fn view_dir(&self) -> [f32; 3] {
        let p = self.position();
        normalize([
            self.target[0] - p[0],
            self.target[1] - p[1],
            self.target[2] - p[2],
        ])
    }

    /// Orthonormal (right, up) basis of the view plane.
    pub fn basis(&self) -> ([f32; 3], [f32; 3]) {
        let dir = self.view_dir();
        let world_up = if dir[2].abs() > 0.99 {
            [0.0, 1.0, 0.0]
        } else {
            [0.0, 0.0, 1.0]
        };
        let right = normalize(cross(dir, world_up));
        let up = normalize(cross(right, dir));
        (right, up)
    }

    /// Ray through pixel `(px, py)` of a `w`×`h` framebuffer: returns
    /// `(origin, direction)`. Orthographic rays share the view direction;
    /// perspective rays all start at the eye and diverge.
    pub fn ray(&self, px: usize, py: usize, w: usize, h: usize) -> ([f32; 3], [f32; 3]) {
        let dir = self.view_dir();
        let (right, up) = self.basis();
        let aspect = w as f32 / h as f32;
        // NDC in [-1, 1], y flipped so row 0 is the top.
        let nx = 2.0 * (px as f32 + 0.5) / w as f32 - 1.0;
        let ny = 1.0 - 2.0 * (py as f32 + 0.5) / h as f32;
        let pos = self.position();
        match self.projection {
            Projection::Orthographic => {
                let sx = nx * self.half_extent * aspect;
                let sy = ny * self.half_extent;
                let origin = [
                    pos[0] + right[0] * sx + up[0] * sy,
                    pos[1] + right[1] * sx + up[1] * sy,
                    pos[2] + right[2] * sx + up[2] * sy,
                ];
                (origin, dir)
            }
            Projection::Perspective { fov_half } => {
                let t = fov_half.tan();
                let sx = nx * t * aspect;
                let sy = ny * t;
                let d = normalize([
                    dir[0] + right[0] * sx + up[0] * sy,
                    dir[1] + right[1] * sx + up[1] * sy,
                    dir[2] + right[2] * sx + up[2] * sy,
                ]);
                (pos, d)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn len3(v: [f32; 3]) -> f32 {
        (v[0] * v[0] + v[1] * v[1] + v[2] * v[2]).sqrt()
    }

    fn dot(a: [f32; 3], b: [f32; 3]) -> f32 {
        a[0] * b[0] + a[1] * b[1] + a[2] * b[2]
    }

    #[test]
    fn position_at_distance() {
        let c = Camera::framing(Dims3::cube(32), 0.3, 0.5);
        let p = c.position();
        let d = [p[0] - c.target[0], p[1] - c.target[1], p[2] - c.target[2]];
        assert!((len3(d) - c.distance).abs() < 1e-3);
    }

    #[test]
    fn view_dir_is_unit_toward_target() {
        let c = Camera::framing(Dims3::cube(32), 1.0, 0.2);
        let dir = c.view_dir();
        assert!((len3(dir) - 1.0).abs() < 1e-5);
        // Walking from the camera along dir by distance lands at the target.
        let p = c.position();
        for k in 0..3 {
            assert!((p[k] + dir[k] * c.distance - c.target[k]).abs() < 1e-2);
        }
    }

    #[test]
    fn basis_is_orthonormal() {
        let c = Camera::framing(Dims3::new(24, 32, 16), 0.7, -0.4);
        let dir = c.view_dir();
        let (right, up) = c.basis();
        assert!((len3(right) - 1.0).abs() < 1e-5);
        assert!((len3(up) - 1.0).abs() < 1e-5);
        assert!(dot(right, up).abs() < 1e-5);
        assert!(dot(right, dir).abs() < 1e-5);
        assert!(dot(up, dir).abs() < 1e-5);
    }

    #[test]
    fn center_ray_hits_target() {
        let c = Camera::framing(Dims3::cube(32), 0.9, 0.3);
        let (origin, dir) = c.ray(32, 32, 64, 64);
        // The center ray passes within half a pixel of the target.
        let to_target = [
            c.target[0] - origin[0],
            c.target[1] - origin[1],
            c.target[2] - origin[2],
        ];
        let t = dot(to_target, dir);
        let closest = [
            origin[0] + dir[0] * t - c.target[0],
            origin[1] + dir[1] * t - c.target[1],
            origin[2] + dir[2] * t - c.target[2],
        ];
        assert!(len3(closest) < c.half_extent * 2.0 / 64.0 + 1e-3);
    }

    #[test]
    fn rays_are_parallel_orthographic() {
        let c = Camera::framing(Dims3::cube(32), 0.2, 0.1);
        let (_, d1) = c.ray(0, 0, 16, 16);
        let (_, d2) = c.ray(15, 15, 16, 16);
        assert_eq!(d1, d2);
    }

    #[test]
    fn perspective_rays_diverge_from_eye() {
        let c = Camera::framing_perspective(Dims3::cube(32), 0.4, 0.2);
        let (o1, d1) = c.ray(0, 0, 16, 16);
        let (o2, d2) = c.ray(15, 15, 16, 16);
        assert_eq!(o1, o2, "perspective rays share the eye");
        assert_ne!(d1, d2, "perspective rays diverge");
        assert!((len3(d1) - 1.0).abs() < 1e-4);
        assert!((len3(d2) - 1.0).abs() < 1e-4);
    }

    #[test]
    fn perspective_center_ray_matches_view_dir() {
        let c = Camera::framing_perspective(Dims3::cube(32), 1.1, -0.3);
        // A 1x1 image's only ray goes straight through the window center.
        let (_, d) = c.ray(0, 0, 1, 1);
        let v = c.view_dir();
        for k in 0..3 {
            assert!((d[k] - v[k]).abs() < 1e-4);
        }
    }

    #[test]
    fn straight_down_view_has_valid_basis() {
        let mut c = Camera::framing(Dims3::cube(16), 0.0, 0.0);
        c.elevation = std::f32::consts::FRAC_PI_2; // looking along -z
        let (right, up) = c.basis();
        assert!(len3(right) > 0.99 && len3(up) > 0.99);
    }
}
