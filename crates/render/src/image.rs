//! RGB framebuffer and PPM output.

use std::io::{self, Write};
use std::path::Path;

/// A simple RGB image with `f32` channels in `[0, 1]`.
#[derive(Debug, Clone, PartialEq)]
pub struct Image {
    width: usize,
    height: usize,
    /// Row-major, 3 floats per pixel.
    data: Vec<f32>,
}

impl Image {
    /// A black image.
    pub fn new(width: usize, height: usize) -> Self {
        assert!(width > 0 && height > 0);
        Self {
            width,
            height,
            data: vec![0.0; width * height * 3],
        }
    }

    pub fn width(&self) -> usize {
        self.width
    }

    pub fn height(&self) -> usize {
        self.height
    }

    #[inline]
    pub fn pixel(&self, x: usize, y: usize) -> [f32; 3] {
        let i = 3 * (x + self.width * y);
        [self.data[i], self.data[i + 1], self.data[i + 2]]
    }

    #[inline]
    pub fn set_pixel(&mut self, x: usize, y: usize, rgb: [f32; 3]) {
        let i = 3 * (x + self.width * y);
        self.data[i] = rgb[0].clamp(0.0, 1.0);
        self.data[i + 1] = rgb[1].clamp(0.0, 1.0);
        self.data[i + 2] = rgb[2].clamp(0.0, 1.0);
    }

    /// Mutable row access for parallel rendering.
    pub fn rows_mut(&mut self) -> std::slice::ChunksMut<'_, f32> {
        self.data.chunks_mut(self.width * 3)
    }

    pub fn as_slice(&self) -> &[f32] {
        &self.data
    }

    /// Mean luminance (diagnostic used by tests and benches).
    pub fn mean_luminance(&self) -> f32 {
        if self.data.is_empty() {
            return 0.0;
        }
        let sum: f64 = self
            .data
            .chunks_exact(3)
            .map(|p| 0.2126 * p[0] as f64 + 0.7152 * p[1] as f64 + 0.0722 * p[2] as f64)
            .sum();
        (sum / (self.width * self.height) as f64) as f32
    }

    /// Mean squared error against another image of identical size.
    pub fn mse(&self, other: &Image) -> f64 {
        assert_eq!(self.width, other.width);
        assert_eq!(self.height, other.height);
        let ss: f64 = self
            .data
            .iter()
            .zip(&other.data)
            .map(|(&a, &b)| ((a - b) as f64).powi(2))
            .sum();
        ss / self.data.len() as f64
    }

    /// Encode as binary PPM (P6).
    pub fn to_ppm(&self) -> Vec<u8> {
        let mut out = format!("P6\n{} {}\n255\n", self.width, self.height).into_bytes();
        out.reserve(self.data.len());
        for &c in &self.data {
            out.push((c.clamp(0.0, 1.0) * 255.0).round() as u8);
        }
        out
    }

    /// Write a PPM file.
    pub fn save_ppm(&self, path: &Path) -> io::Result<()> {
        let mut f = std::fs::File::create(path)?;
        f.write_all(&self.to_ppm())
    }

    /// Build a grayscale image from 2D slice data (row-major), normalizing
    /// to the occupied range — used for the interactive slice views.
    pub fn from_slice_data(w: usize, h: usize, data: &[f32]) -> Self {
        assert_eq!(data.len(), w * h);
        let lo = data.iter().cloned().fold(f32::INFINITY, f32::min);
        let hi = data.iter().cloned().fold(f32::NEG_INFINITY, f32::max);
        let span = (hi - lo).max(1e-12);
        let mut img = Image::new(w, h);
        for y in 0..h {
            for x in 0..w {
                let t = (data[x + w * y] - lo) / span;
                img.set_pixel(x, y, [t, t, t]);
            }
        }
        img
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_is_black() {
        let img = Image::new(4, 3);
        assert_eq!(img.pixel(0, 0), [0.0; 3]);
        assert_eq!(img.mean_luminance(), 0.0);
    }

    #[test]
    fn set_pixel_clamps() {
        let mut img = Image::new(2, 2);
        img.set_pixel(1, 1, [2.0, -1.0, 0.5]);
        assert_eq!(img.pixel(1, 1), [1.0, 0.0, 0.5]);
    }

    #[test]
    fn ppm_header_and_size() {
        let img = Image::new(5, 7);
        let ppm = img.to_ppm();
        assert!(ppm.starts_with(b"P6\n5 7\n255\n"));
        assert_eq!(ppm.len(), 11 + 5 * 7 * 3);
    }

    #[test]
    fn ppm_pixel_values() {
        let mut img = Image::new(1, 1);
        img.set_pixel(0, 0, [1.0, 0.0, 0.5]);
        let ppm = img.to_ppm();
        let body = &ppm[ppm.len() - 3..];
        assert_eq!(body, &[255, 0, 128]);
    }

    #[test]
    fn mse_zero_for_identical() {
        let mut a = Image::new(3, 3);
        a.set_pixel(1, 1, [0.3, 0.6, 0.9]);
        assert_eq!(a.mse(&a.clone()), 0.0);
        let b = Image::new(3, 3);
        assert!(a.mse(&b) > 0.0);
    }

    #[test]
    fn from_slice_normalizes() {
        let img = Image::from_slice_data(2, 1, &[1.0, 3.0]);
        assert_eq!(img.pixel(0, 0), [0.0; 3]);
        assert_eq!(img.pixel(1, 0), [1.0; 3]);
    }

    #[test]
    fn rows_mut_count() {
        let mut img = Image::new(4, 6);
        assert_eq!(img.rows_mut().count(), 6);
    }

    #[test]
    #[should_panic]
    fn zero_size_panics() {
        let _ = Image::new(0, 3);
    }
}
