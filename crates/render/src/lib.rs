//! Software direct volume rendering.
//!
//! The paper renders with "fragment programs and view aligned 3D textures"
//! on a GeForce 6800 (Section 7). This crate reproduces the same pipeline on
//! the CPU: per-ray front-to-back compositing with transfer-function lookups,
//! central-difference gradient shading, early ray termination, and the
//! multi-pass tracked-feature overlay (tracked voxels drawn in red over the
//! context volume). Scanlines render in parallel with rayon.
//!
//! - [`Image`] — an RGB framebuffer with PPM output,
//! - [`Camera`] — an orbiting look-at camera with orthographic projection,
//! - [`Renderer`] — the ray caster,
//! - [`render_tracking_overlay`] — the Section 5/7 feature-highlight pass.

pub mod camera;
pub mod image;
pub mod raycast;
pub mod slice_view;

pub use camera::Camera;
pub use image::Image;
pub use raycast::{render_tracking_overlay, RenderParams, Renderer, AUTO_PACKET, MAX_PACKET};
pub use slice_view::{render_slice, slice_data, three_view, SliceAxis};
