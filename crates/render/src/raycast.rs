//! The ray caster: front-to-back compositing with transfer-function lookup,
//! gradient shading, early ray termination, and the tracked-feature overlay.

use crate::camera::Camera;
use crate::image::Image;
use ifet_tf::{ColorMap, TransferFunction1D};
use ifet_volume::sample::{gradient_trilinear, normalize3, trilinear};
use ifet_volume::{Mask3, ScalarVolume};
use rayon::prelude::*;

/// Rendering configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RenderParams {
    /// Sampling step along the ray, in voxels.
    pub step: f32,
    /// Stop compositing when accumulated opacity exceeds this.
    pub early_termination: f32,
    /// Enable gradient (Phong) shading.
    pub shading: bool,
    /// Ambient light factor when shading.
    pub ambient: f32,
    /// Specular highlight strength (0 disables the specular term).
    pub specular: f32,
    /// Specular exponent (shininess).
    pub shininess: f32,
    /// Global opacity scale applied to TF lookups (per-sample, corrected for
    /// step length against a reference step of 1 voxel).
    pub opacity_scale: f32,
    /// Background color.
    pub background: [f32; 3],
    /// Samples fetched per packet along each ray (position math, trilinear
    /// fetch, and opacity lookup are batched per packet; compositing stays
    /// serial). `0` = auto. Output is identical at every packet size.
    pub packet: usize,
}

/// Packet width used when [`RenderParams::packet`] is 0 (auto).
pub const AUTO_PACKET: usize = 8;

/// Upper bound on the packet width (packet staging lives on the stack).
pub const MAX_PACKET: usize = 64;

impl Default for RenderParams {
    fn default() -> Self {
        Self {
            step: 0.8,
            early_termination: 0.98,
            shading: true,
            ambient: 0.35,
            specular: 0.0,
            shininess: 32.0,
            opacity_scale: 1.0,
            background: [0.0; 3],
            packet: 0,
        }
    }
}

impl RenderParams {
    /// Effective packet width (auto resolved, clamped to [`MAX_PACKET`]).
    pub fn packet_size(&self) -> usize {
        match self.packet {
            0 => AUTO_PACKET,
            n => n.min(MAX_PACKET),
        }
    }
}

/// Per-sample opacity corrected from the 1-voxel reference step to `step`:
/// transmittance through one sample is `(1-α)^step`, so a homogeneous medium
/// accumulates the same opacity per unit length at any step size. (The
/// first-order form `α·step` over-weights coarse steps — the old bug.)
#[inline]
fn corrected_opacity(base: f32, step: f32) -> f32 {
    1.0 - (1.0 - base.clamp(0.0, 1.0)).powf(step)
}

/// Step-corrected opacity for every TF table entry. The 1D TF is a plain
/// nearest-entry table lookup, so correcting per entry is exact while
/// hoisting the `powf` out of the per-sample loop.
fn corrected_table(tf: &TransferFunction1D, opacity_scale: f32, step: f32) -> Vec<f32> {
    tf.table()
        .iter()
        .map(|&o| corrected_opacity(o * opacity_scale, step))
        .collect()
}

/// A software direct volume renderer.
#[derive(Debug, Clone, Default)]
pub struct Renderer {
    pub params: RenderParams,
}

impl Renderer {
    pub fn new(params: RenderParams) -> Self {
        Self { params }
    }

    /// Render `vol` through `tf` (opacity) and `cmap` (color by value over
    /// the TF's domain) from `camera` into a `w`×`h` image.
    pub fn render(
        &self,
        vol: &ScalarVolume,
        tf: &TransferFunction1D,
        cmap: ColorMap,
        camera: &Camera,
        w: usize,
        h: usize,
    ) -> Image {
        self.render_impl(vol, tf, cmap, camera, w, h, None, None)
    }

    #[allow(clippy::too_many_arguments)]
    fn render_impl(
        &self,
        vol: &ScalarVolume,
        tf: &TransferFunction1D,
        cmap: ColorMap,
        camera: &Camera,
        w: usize,
        h: usize,
        overlay: Option<&Mask3>,
        overlay_tf: Option<&TransferFunction1D>,
    ) -> Image {
        let _span = ifet_obs::span("render.raycast");
        let mut img = Image::new(w, h);
        let p = self.params;
        let d = vol.dims();
        let (tlo, thi) = tf.domain();
        let light = camera.view_dir(); // headlight
        let corr = corrected_table(tf, p.opacity_scale, p.step);
        let overlay_corr = overlay_tf.map(|otf| corrected_table(otf, p.opacity_scale, p.step));

        let rows: Vec<(usize, &mut [f32])> = img.rows_mut().enumerate().collect();
        rows.into_par_iter().for_each(|(py, row)| {
            // Workers may not open spans; per-scanline work is reported as
            // deterministic counters flushed when each row finishes.
            let _flush = ifet_obs::flush_guard();
            for px in 0..w {
                let (origin, dir) = camera.ray(px, py, w, h);
                let rgb = self.trace(
                    vol,
                    tf,
                    cmap,
                    origin,
                    dir,
                    light,
                    tlo,
                    thi,
                    &corr,
                    overlay,
                    overlay_tf,
                    overlay_corr.as_deref(),
                );
                row[3 * px] = rgb[0].clamp(0.0, 1.0);
                row[3 * px + 1] = rgb[1].clamp(0.0, 1.0);
                row[3 * px + 2] = rgb[2].clamp(0.0, 1.0);
            }
            ifet_obs::counter("scanlines", 1);
            ifet_obs::counter("pixels", w as u64);
        });

        let _ = (d, p);
        img
    }

    #[allow(clippy::too_many_arguments)]
    fn trace(
        &self,
        vol: &ScalarVolume,
        tf: &TransferFunction1D,
        cmap: ColorMap,
        origin: [f32; 3],
        dir: [f32; 3],
        light: [f32; 3],
        tlo: f32,
        thi: f32,
        corr: &[f32],
        overlay: Option<&Mask3>,
        overlay_tf: Option<&TransferFunction1D>,
        overlay_corr: Option<&[f32]>,
    ) -> [f32; 3] {
        let p = &self.params;
        let d = vol.dims();
        let bounds = [d.nx as f32 - 1.0, d.ny as f32 - 1.0, d.nz as f32 - 1.0];
        let Some((t_enter, t_exit)) = ray_box(origin, dir, bounds) else {
            return p.background;
        };

        let mut color = [0.0f32; 3];
        let mut alpha = 0.0f32;
        // Index-based sample positions (t0 + k·step, never an accumulated
        // `t += step`), so the sample set is independent of packet width.
        let t0 = t_enter.max(0.0);
        if t0 > t_exit {
            return p.background;
        }
        let n_steps = ((t_exit - t0) / p.step) as usize + 1;
        let packet = p.packet_size();
        let mut pos = [[0.0f32; 3]; MAX_PACKET];
        let mut vals = [0.0f32; MAX_PACKET];
        let mut alphas = [0.0f32; MAX_PACKET];

        let mut k = 0;
        'ray: while k < n_steps {
            let m = packet.min(n_steps - k);
            // Batched phases: position math, trilinear fetch, TF lookup.
            for (j, q) in pos[..m].iter_mut().enumerate() {
                let t = t0 + (k + j) as f32 * p.step;
                *q = [
                    origin[0] + dir[0] * t,
                    origin[1] + dir[1] * t,
                    origin[2] + dir[2] * t,
                ];
            }
            for j in 0..m {
                vals[j] = trilinear(vol, pos[j][0], pos[j][1], pos[j][2]);
            }
            for j in 0..m {
                alphas[j] = corr[tf.entry_of(vals[j])];
            }
            // Serial compositing (order-dependent), early-exiting the ray.
            for j in 0..m {
                let [x, y, z] = pos[j];
                let v = vals[j];
                let mut a = alphas[j];
                let mut sample_color = cmap.sample_in(v, tlo, thi);
                // Tracked-feature overlay: voxels inside the region-grow
                // mask render red with the adaptive TF's opacity (Section 7).
                if let (Some(mask), Some(otf), Some(ocorr)) = (overlay, overlay_tf, overlay_corr) {
                    let (cx, cy, cz) =
                        d.clamp_i(x.round() as i64, y.round() as i64, z.round() as i64);
                    if mask.get(cx, cy, cz) {
                        sample_color = [1.0, 0.1, 0.1];
                        a = ocorr[otf.entry_of(v)];
                    }
                }
                if a > 1e-4 {
                    if p.shading {
                        let g = normalize3(gradient_trilinear(vol, x, y, z));
                        let ndotl = (g[0] * light[0] + g[1] * light[1] + g[2] * light[2]).abs();
                        let shade = p.ambient + (1.0 - p.ambient) * ndotl;
                        for c in &mut sample_color {
                            *c *= shade;
                        }
                        // Headlight specular: the half-vector coincides with
                        // the light/view direction, so the highlight is
                        // |n·l|^s.
                        if p.specular > 0.0 {
                            let spec = p.specular * ndotl.powf(p.shininess);
                            for c in &mut sample_color {
                                *c += spec;
                            }
                        }
                    }
                    let w = a * (1.0 - alpha);
                    for ch in 0..3 {
                        color[ch] += w * sample_color[ch];
                    }
                    alpha += w;
                    if alpha >= p.early_termination {
                        break 'ray;
                    }
                }
            }
            k += m;
        }

        [
            color[0] + (1.0 - alpha) * p.background[0],
            color[1] + (1.0 - alpha) * p.background[1],
            color[2] + (1.0 - alpha) * p.background[2],
        ]
    }
}

impl Renderer {
    /// Render a data-space classification result: "the classified result is
    /// stored as a 3D texture and used to assign opacity to each voxel"
    /// (Section 7). Opacity comes from the certainty field, color from the
    /// original data values — so color still communicates the physics
    /// (Section 7's color-stays-quantitative rule).
    pub fn render_classified(
        &self,
        vol: &ScalarVolume,
        certainty: &ScalarVolume,
        cmap: ColorMap,
        camera: &Camera,
        w: usize,
        h: usize,
    ) -> Image {
        assert_eq!(
            vol.dims(),
            certainty.dims(),
            "certainty field dims mismatch"
        );
        let _span = ifet_obs::span("render.classified");
        let mut img = Image::new(w, h);
        let p = self.params;
        let d = vol.dims();
        let (vlo, vhi) = vol.value_range();
        let bounds = [d.nx as f32 - 1.0, d.ny as f32 - 1.0, d.nz as f32 - 1.0];
        let light = camera.view_dir();

        let rows: Vec<(usize, &mut [f32])> = img.rows_mut().enumerate().collect();
        rows.into_par_iter().for_each(|(py, row)| {
            let _flush = ifet_obs::flush_guard();
            ifet_obs::counter("scanlines", 1);
            ifet_obs::counter("pixels", w as u64);
            let packet = p.packet_size();
            let mut pos = [[0.0f32; 3]; MAX_PACKET];
            let mut alphas = [0.0f32; MAX_PACKET];
            for px in 0..w {
                let (origin, dir) = camera.ray(px, py, w, h);
                let mut color = [0.0f32; 3];
                let mut alpha = 0.0f32;
                if let Some((t_enter, t_exit)) = ray_box(origin, dir, bounds) {
                    let t0 = t_enter.max(0.0);
                    let n_steps = if t0 > t_exit {
                        0
                    } else {
                        ((t_exit - t0) / p.step) as usize + 1
                    };
                    let mut k = 0;
                    'ray: while k < n_steps {
                        let m = packet.min(n_steps - k);
                        for (j, q) in pos[..m].iter_mut().enumerate() {
                            let t = t0 + (k + j) as f32 * p.step;
                            *q = [
                                origin[0] + dir[0] * t,
                                origin[1] + dir[1] * t,
                                origin[2] + dir[2] * t,
                            ];
                        }
                        // Certainty is trilinearly interpolated (continuous),
                        // so the step correction is per-sample `powf` here —
                        // batched alongside the fetch.
                        for j in 0..m {
                            let cert = trilinear(certainty, pos[j][0], pos[j][1], pos[j][2]);
                            alphas[j] = corrected_opacity(cert * p.opacity_scale, p.step);
                        }
                        for j in 0..m {
                            let [x, y, z] = pos[j];
                            let a = alphas[j];
                            if a > 1e-4 {
                                let v = trilinear(vol, x, y, z);
                                let mut c = cmap.sample_in(v, vlo, vhi);
                                if p.shading {
                                    let g = normalize3(gradient_trilinear(vol, x, y, z));
                                    let ndotl =
                                        (g[0] * light[0] + g[1] * light[1] + g[2] * light[2]).abs();
                                    let shade = p.ambient + (1.0 - p.ambient) * ndotl;
                                    for ch in &mut c {
                                        *ch *= shade;
                                    }
                                }
                                let wgt = a * (1.0 - alpha);
                                for ch in 0..3 {
                                    color[ch] += wgt * c[ch];
                                }
                                alpha += wgt;
                                if alpha >= p.early_termination {
                                    break 'ray;
                                }
                            }
                        }
                        k += m;
                    }
                }
                row[3 * px] = (color[0] + (1.0 - alpha) * p.background[0]).clamp(0.0, 1.0);
                row[3 * px + 1] = (color[1] + (1.0 - alpha) * p.background[1]).clamp(0.0, 1.0);
                row[3 * px + 2] = (color[2] + (1.0 - alpha) * p.background[2]).clamp(0.0, 1.0);
            }
        });
        img
    }

    /// Maximum-intensity projection: each pixel shows the color-mapped
    /// maximum TF-visible value along its ray. A cheap overview mode — no
    /// compositing, no shading — useful for locating features before
    /// committing to a transfer function.
    pub fn render_mip(
        &self,
        vol: &ScalarVolume,
        cmap: ColorMap,
        camera: &Camera,
        w: usize,
        h: usize,
    ) -> Image {
        let _span = ifet_obs::span("render.mip");
        let mut img = Image::new(w, h);
        let p = self.params;
        let d = vol.dims();
        let (vlo, vhi) = vol.value_range();
        let bounds = [d.nx as f32 - 1.0, d.ny as f32 - 1.0, d.nz as f32 - 1.0];

        let rows: Vec<(usize, &mut [f32])> = img.rows_mut().enumerate().collect();
        rows.into_par_iter().for_each(|(py, row)| {
            let _flush = ifet_obs::flush_guard();
            ifet_obs::counter("scanlines", 1);
            ifet_obs::counter("pixels", w as u64);
            let packet = p.packet_size();
            let mut vals = [0.0f32; MAX_PACKET];
            for px in 0..w {
                let (origin, dir) = camera.ray(px, py, w, h);
                let rgb = if let Some((t_enter, t_exit)) = ray_box(origin, dir, bounds) {
                    let mut best = f32::NEG_INFINITY;
                    let t0 = t_enter.max(0.0);
                    let n_steps = if t0 > t_exit {
                        0
                    } else {
                        ((t_exit - t0) / p.step) as usize + 1
                    };
                    let mut k = 0;
                    while k < n_steps {
                        let m = packet.min(n_steps - k);
                        for (j, v) in vals[..m].iter_mut().enumerate() {
                            let t = t0 + (k + j) as f32 * p.step;
                            *v = trilinear(
                                vol,
                                origin[0] + dir[0] * t,
                                origin[1] + dir[1] * t,
                                origin[2] + dir[2] * t,
                            );
                        }
                        for &v in &vals[..m] {
                            best = best.max(v);
                        }
                        k += m;
                    }
                    if best.is_finite() {
                        cmap.sample_in(best, vlo, vhi)
                    } else {
                        p.background
                    }
                } else {
                    p.background
                };
                row[3 * px] = rgb[0].clamp(0.0, 1.0);
                row[3 * px + 1] = rgb[1].clamp(0.0, 1.0);
                row[3 * px + 2] = rgb[2].clamp(0.0, 1.0);
            }
        });
        img
    }
}

/// Ray / axis-aligned-box intersection over `[0, bounds]³`.
/// Returns the parametric `(t_enter, t_exit)` interval, or None for a miss.
fn ray_box(origin: [f32; 3], dir: [f32; 3], bounds: [f32; 3]) -> Option<(f32, f32)> {
    let mut t0 = f32::NEG_INFINITY;
    let mut t1 = f32::INFINITY;
    for k in 0..3 {
        if dir[k].abs() < 1e-9 {
            if origin[k] < 0.0 || origin[k] > bounds[k] {
                return None;
            }
            continue;
        }
        let inv = 1.0 / dir[k];
        let mut a = -origin[k] * inv;
        let mut b = (bounds[k] - origin[k]) * inv;
        if a > b {
            std::mem::swap(&mut a, &mut b);
        }
        t0 = t0.max(a);
        t1 = t1.min(b);
    }
    (t0 <= t1).then_some((t0, t1))
}

/// Render the tracked feature highlighted in red over the context volume —
/// "when a voxel's value in the region growing texture is one, its color is
/// set to red and its opacity is set to the opacity in the adaptive transfer
/// function. Otherwise, the color and opacity looked up from the user
/// specified 1D transfer function are shown." (Section 7)
#[allow(clippy::too_many_arguments)]
pub fn render_tracking_overlay(
    renderer: &Renderer,
    vol: &ScalarVolume,
    tracked: &Mask3,
    base_tf: &TransferFunction1D,
    adaptive_tf: &TransferFunction1D,
    cmap: ColorMap,
    camera: &Camera,
    w: usize,
    h: usize,
) -> Image {
    assert_eq!(tracked.dims(), vol.dims());
    renderer.render_impl(
        vol,
        base_tf,
        cmap,
        camera,
        w,
        h,
        Some(tracked),
        Some(adaptive_tf),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use ifet_volume::Dims3;

    fn ball_volume(n: usize, r: f32) -> ScalarVolume {
        let c = (n as f32 - 1.0) / 2.0;
        ScalarVolume::from_fn(Dims3::cube(n), |x, y, z| {
            let d =
                ((x as f32 - c).powi(2) + (y as f32 - c).powi(2) + (z as f32 - c).powi(2)).sqrt();
            if d <= r {
                1.0
            } else {
                0.0
            }
        })
    }

    fn setup(n: usize) -> (ScalarVolume, TransferFunction1D, Camera) {
        let vol = ball_volume(n, n as f32 * 0.25);
        let tf = TransferFunction1D::band(0.0, 1.0, 0.5, 1.0, 0.9);
        let cam = Camera::framing(vol.dims(), 0.6, 0.4);
        (vol, tf, cam)
    }

    #[test]
    fn ray_box_hit_and_miss() {
        let b = [9.0, 9.0, 9.0];
        let hit = ray_box([-5.0, 4.5, 4.5], [1.0, 0.0, 0.0], b).unwrap();
        assert!((hit.0 - 5.0).abs() < 1e-5);
        assert!((hit.1 - 14.0).abs() < 1e-5);
        assert!(ray_box([-5.0, 20.0, 4.5], [1.0, 0.0, 0.0], b).is_none());
        // Parallel ray inside the slab.
        assert!(ray_box([4.0, 4.0, -3.0], [0.0, 0.0, 1.0], b).is_some());
    }

    #[test]
    fn ball_renders_bright_center_dark_corner() {
        let (vol, tf, cam) = setup(24);
        let img = Renderer::default().render(&vol, &tf, ColorMap::Grayscale, &cam, 48, 48);
        let center = img.pixel(24, 24);
        let corner = img.pixel(1, 1);
        assert!(
            center[0] > corner[0] + 0.2,
            "center {center:?} vs corner {corner:?}"
        );
    }

    #[test]
    fn transparent_tf_gives_background() {
        let (vol, _, cam) = setup(16);
        let tf = TransferFunction1D::transparent(0.0, 1.0);
        let mut r = Renderer::default();
        r.params.background = [0.2, 0.3, 0.4];
        let img = r.render(&vol, &tf, ColorMap::Grayscale, &cam, 16, 16);
        for y in 0..16 {
            for x in 0..16 {
                let p = img.pixel(x, y);
                assert!((p[0] - 0.2).abs() < 1e-4 && (p[2] - 0.4).abs() < 1e-4);
            }
        }
    }

    #[test]
    fn rendering_is_deterministic() {
        let (vol, tf, cam) = setup(16);
        let r = Renderer::default();
        let a = r.render(&vol, &tf, ColorMap::Rainbow, &cam, 32, 32);
        let b = r.render(&vol, &tf, ColorMap::Rainbow, &cam, 32, 32);
        assert_eq!(a, b);
    }

    #[test]
    fn early_termination_changes_little() {
        let (vol, tf, cam) = setup(20);
        let mut on = Renderer::default();
        on.params.early_termination = 0.95;
        let mut off = Renderer::default();
        off.params.early_termination = 1.1; // never triggers
        let a = on.render(&vol, &tf, ColorMap::Grayscale, &cam, 24, 24);
        let b = off.render(&vol, &tf, ColorMap::Grayscale, &cam, 24, 24);
        assert!(a.mse(&b) < 1e-3, "mse {}", a.mse(&b));
    }

    #[test]
    fn shading_darkens_flat_regions() {
        // With a headlight, faces oblique to the view get darker than the
        // unshaded render; total luminance must drop.
        let (vol, tf, cam) = setup(20);
        let mut shaded = Renderer::default();
        shaded.params.ambient = 0.2;
        let mut flat = Renderer::default();
        flat.params.shading = false;
        let a = shaded.render(&vol, &tf, ColorMap::Grayscale, &cam, 32, 32);
        let b = flat.render(&vol, &tf, ColorMap::Grayscale, &cam, 32, 32);
        assert!(a.mean_luminance() < b.mean_luminance());
    }

    #[test]
    fn specular_adds_highlights() {
        let (vol, tf, cam) = setup(20);
        let mut plain = Renderer::default();
        plain.params.specular = 0.0;
        let mut shiny = Renderer::default();
        shiny.params.specular = 0.8;
        shiny.params.shininess = 8.0;
        let a = plain.render(&vol, &tf, ColorMap::Grayscale, &cam, 32, 32);
        let b = shiny.render(&vol, &tf, ColorMap::Grayscale, &cam, 32, 32);
        assert!(b.mean_luminance() > a.mean_luminance());
    }

    #[test]
    fn perspective_projection_renders_the_ball() {
        let (vol, tf, _) = setup(24);
        let cam = crate::camera::Camera::framing_perspective(vol.dims(), 0.6, 0.4);
        let img = Renderer::default().render(&vol, &tf, ColorMap::Grayscale, &cam, 48, 48);
        let center = img.pixel(24, 24);
        let corner = img.pixel(1, 1);
        assert!(center[0] > corner[0] + 0.2, "{center:?} vs {corner:?}");
    }

    #[test]
    fn overlay_highlights_tracked_feature_in_red() {
        let (vol, tf, cam) = setup(24);
        let tracked = Mask3::threshold(&vol, 0.5);
        let adaptive = TransferFunction1D::band(0.0, 1.0, 0.5, 1.0, 1.0);
        let mut r = Renderer::default();
        r.params.shading = false;
        let img = render_tracking_overlay(
            &r,
            &vol,
            &tracked,
            &tf,
            &adaptive,
            ColorMap::Grayscale,
            &cam,
            48,
            48,
        );
        let center = img.pixel(24, 24);
        assert!(
            center[0] > center[1] * 2.0,
            "tracked feature should be red: {center:?}"
        );
    }

    #[test]
    fn overlay_leaves_background_unchanged() {
        let (vol, tf, cam) = setup(24);
        let empty = Mask3::empty(vol.dims());
        let adaptive = TransferFunction1D::band(0.0, 1.0, 0.5, 1.0, 1.0);
        let r = Renderer::default();
        let with = render_tracking_overlay(
            &r,
            &vol,
            &empty,
            &tf,
            &adaptive,
            ColorMap::Grayscale,
            &cam,
            32,
            32,
        );
        let without = r.render(&vol, &tf, ColorMap::Grayscale, &cam, 32, 32);
        assert!(with.mse(&without) < 1e-9);
    }

    #[test]
    fn classified_render_shows_only_certain_regions() {
        let (vol, _, cam) = setup(24);
        // Certainty = the ball itself vs all-zero certainty.
        let certainty = vol.clone();
        let r = Renderer::default();
        let img = r.render_classified(&vol, &certainty, ColorMap::Grayscale, &cam, 32, 32);
        assert!(img.mean_luminance() > 0.01);
        let none = r.render_classified(
            &vol,
            &ScalarVolume::zeros(vol.dims()),
            ColorMap::Grayscale,
            &cam,
            32,
            32,
        );
        assert!(
            none.mean_luminance() < 1e-6,
            "zero certainty must render black"
        );
    }

    #[test]
    #[should_panic]
    fn classified_render_dims_mismatch_panics() {
        let (vol, _, cam) = setup(8);
        let bad = ScalarVolume::zeros(Dims3::cube(4));
        Renderer::default().render_classified(&vol, &bad, ColorMap::Grayscale, &cam, 8, 8);
    }

    #[test]
    fn mip_brightest_where_feature_is() {
        let (vol, _, cam) = setup(24);
        let img = Renderer::default().render_mip(&vol, ColorMap::Grayscale, &cam, 48, 48);
        // The ball projects to the image center: MIP there sees value 1.0.
        let center = img.pixel(24, 24);
        let corner = img.pixel(1, 1);
        assert!(center[0] > 0.9, "{center:?}");
        assert!(center[0] > corner[0]);
    }

    #[test]
    fn mip_of_constant_volume_is_uniform() {
        let vol = ScalarVolume::filled(Dims3::cube(12), 0.5);
        let cam = Camera::framing(vol.dims(), 0.3, 0.2);
        let img = Renderer::default().render_mip(&vol, ColorMap::Grayscale, &cam, 16, 16);
        // Every ray that hits the box sees the same max (degenerate range
        // maps to the color map's low end).
        let p = img.pixel(8, 8);
        assert_eq!(p[0], p[1]);
    }

    #[test]
    fn opacity_correction_makes_composite_step_invariant() {
        // Compositing a homogeneous medium must converge to the same image
        // regardless of step size once per-sample opacity is corrected to
        // the 1-voxel reference step: a = 1-(1-α)^step. The old linear
        // correction α·step over-weights coarse steps (regression gate).
        let vol = ScalarVolume::filled(Dims3::cube(12), 0.75);
        let tf = TransferFunction1D::band(0.0, 1.0, 0.0, 1.0, 0.15);
        let cam = Camera::framing(vol.dims(), 0.0, 0.0);
        let render_at = |step: f32| {
            let mut r = Renderer::default();
            r.params.step = step;
            r.params.shading = false;
            r.params.early_termination = 1.1; // compare full integrals
            r.render(&vol, &tf, ColorMap::Grayscale, &cam, 16, 16)
        };
        let coarse = render_at(2.5);
        let fine = render_at(0.25);
        // The center pixel's ray crosses the full box; linear correction
        // puts it at 0.678 vs 0.616, the exponent form within ~0.022.
        let diff = (coarse.pixel(8, 8)[0] - fine.pixel(8, 8)[0]).abs();
        assert!(
            diff < 0.04,
            "step-corrected composites disagree: coarse {} vs fine {} (diff {diff})",
            coarse.pixel(8, 8)[0],
            fine.pixel(8, 8)[0]
        );
    }

    #[test]
    fn packet_size_does_not_change_output() {
        // Sample positions are index-based and compositing is serial, so the
        // packet width is a pure throughput knob: images must be identical
        // (not just close) at every width, in all three render modes.
        let (vol, tf, cam) = setup(20);
        let tracked = Mask3::threshold(&vol, 0.5);
        let adaptive = TransferFunction1D::band(0.0, 1.0, 0.5, 1.0, 1.0);
        let at = |packet: usize| {
            let mut r = Renderer::default();
            r.params.packet = packet;
            r.params.specular = 0.4;
            let dvr = r.render(&vol, &tf, ColorMap::Rainbow, &cam, 24, 24);
            let cls = r.render_classified(&vol, &vol, ColorMap::Grayscale, &cam, 24, 24);
            let mip = r.render_mip(&vol, ColorMap::Grayscale, &cam, 24, 24);
            let ovl = render_tracking_overlay(
                &r,
                &vol,
                &tracked,
                &tf,
                &adaptive,
                ColorMap::Grayscale,
                &cam,
                24,
                24,
            );
            (dvr, cls, mip, ovl)
        };
        let reference = at(1);
        for packet in [3usize, 8, 64, 1000] {
            assert_eq!(at(packet), reference, "packet {packet}");
        }
    }

    #[test]
    fn opacity_scale_monotone() {
        let (vol, tf, cam) = setup(16);
        let mut weak = Renderer::default();
        weak.params.opacity_scale = 0.2;
        weak.params.shading = false;
        let mut strong = Renderer::default();
        strong.params.opacity_scale = 1.0;
        strong.params.shading = false;
        let a = weak.render(&vol, &tf, ColorMap::Grayscale, &cam, 24, 24);
        let b = strong.render(&vol, &tf, ColorMap::Grayscale, &cam, 24, 24);
        assert!(a.mean_luminance() < b.mean_luminance());
    }
}
