//! Unix-socket transport: a thread-per-connection server over
//! [`ServeEngine`] and a blocking [`Client`].
//!
//! The socket carries exactly the frames defined in [`crate::protocol`].
//! A connection may interleave requests for any tenants (the tenant id
//! travels in each request); a malformed frame gets a `Protocol` error
//! response and the connection is closed, since framing can no longer be
//! trusted mid-stream.

use crate::engine::ServeEngine;
use crate::protocol::{
    decode_response, encode_request, read_frame_bytes, ProtocolError, Request, Response,
    MAGIC_REQUEST, MAGIC_RESPONSE,
};
use std::io::Write;
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Server run policy.
#[derive(Debug, Clone, Copy, Default)]
pub struct ServerOpts {
    /// Stop accepting and return once this many requests have been served
    /// (`None` = run until the process dies). Lets tests and demos run the
    /// server on a plain thread with a deterministic exit.
    pub max_requests: Option<u64>,
}

/// Serve `engine` on a Unix socket at `path` until `max_requests` requests
/// have been answered. Returns the number served. Any stale socket file at
/// `path` is replaced.
pub fn serve_unix(path: &Path, engine: &ServeEngine, opts: ServerOpts) -> std::io::Result<u64> {
    let _ = std::fs::remove_file(path);
    let listener = UnixListener::bind(path)?;
    listener.set_nonblocking(true)?;
    let served = Arc::new(AtomicU64::new(0));
    let mut workers = Vec::new();
    loop {
        if let Some(max) = opts.max_requests {
            if served.load(Ordering::SeqCst) >= max {
                break;
            }
        }
        match listener.accept() {
            Ok((stream, _addr)) => {
                stream.set_nonblocking(false)?;
                let engine = engine.clone();
                let served = Arc::clone(&served);
                let shutdown = stream.try_clone()?;
                workers.push((
                    std::thread::spawn(move || {
                        let _ = serve_connection(stream, &engine, &served);
                    }),
                    shutdown,
                ));
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(std::time::Duration::from_millis(2));
            }
            Err(e) => return Err(e),
        }
    }
    drop(listener);
    let _ = std::fs::remove_file(path);
    // Connections may be parked in a blocking read waiting for a next
    // request that will never come; shut them down so their threads see
    // EOF and exit instead of pinning the server.
    for (w, stream) in workers {
        let _ = stream.shutdown(std::net::Shutdown::Both);
        let _ = w.join();
    }
    Ok(served.load(Ordering::SeqCst))
}

fn serve_connection(
    mut stream: UnixStream,
    engine: &ServeEngine,
    served: &AtomicU64,
) -> std::io::Result<()> {
    loop {
        match read_frame_bytes(&mut stream, MAGIC_REQUEST)? {
            None => return Ok(()),
            Some(Ok(frame)) => {
                let rsp = engine.handle_wire(&frame);
                stream.write_all(&rsp)?;
                served.fetch_add(1, Ordering::SeqCst);
            }
            Some(Err(e)) => {
                // Framing is lost: answer with a typed protocol error
                // (request id 0 — corrupted bytes are attributable to no
                // session) and drop the connection.
                let rsp = crate::protocol::encode_response(&Response {
                    request_id: 0,
                    tenant: 0,
                    body: crate::protocol::ResponseBody::Err {
                        code: crate::protocol::ErrorCode::Protocol,
                        message: e.to_string(),
                    },
                });
                let _ = stream.write_all(&rsp);
                served.fetch_add(1, Ordering::SeqCst);
                return Ok(());
            }
        }
    }
}

/// Why a client call failed.
#[derive(Debug)]
pub enum ClientError {
    Io(std::io::Error),
    Protocol(ProtocolError),
    /// The server closed the connection before responding.
    Disconnected,
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "i/o: {e}"),
            ClientError::Protocol(e) => write!(f, "protocol: {e}"),
            ClientError::Disconnected => write!(f, "server closed the connection"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<std::io::Error> for ClientError {
    fn from(e: std::io::Error) -> Self {
        ClientError::Io(e)
    }
}

/// A blocking request/response client over a Unix socket.
pub struct Client {
    stream: UnixStream,
}

impl Client {
    pub fn connect(path: &Path) -> std::io::Result<Self> {
        Ok(Self {
            stream: UnixStream::connect(path)?,
        })
    }

    /// Send one request and wait for its response.
    pub fn call(&mut self, req: &Request) -> Result<Response, ClientError> {
        self.stream.write_all(&encode_request(req))?;
        match read_frame_bytes(&mut self.stream, MAGIC_RESPONSE)? {
            None => Err(ClientError::Disconnected),
            Some(Ok(frame)) => decode_response(&frame).map_err(ClientError::Protocol),
            Some(Err(e)) => Err(ClientError::Protocol(e)),
        }
    }
}
