//! Unix-socket transport: a worker-pool server over [`ServeEngine`] and a
//! multiplexing [`Client`].
//!
//! # Executor model
//!
//! Three thread roles per running server:
//!
//! - **readers** (one per connection) block on the socket, decode request
//!   frames, and enqueue decoded jobs on their connection's queue. A reader
//!   admits at most the connection's pipeline depth of outstanding requests
//!   (decoded but not yet answered): depth 1 until the client sends a
//!   [`Verb::Hello`] handshake — exactly the v1 one-request-one-reply
//!   cadence — and the granted depth after it.
//! - **workers** (a fixed pool of [`ServerOpts::workers`] threads) pull jobs
//!   round-robin across connection queues — one connection with a deep
//!   pipeline cannot starve another's single request — and execute them on
//!   the engine.
//! - **writers** (one per connection) serialize replies in completion
//!   order. Out-of-order replies are legal precisely because every response
//!   carries its request id: the client matches replies by id, and each id's
//!   reply bytes are schedule-independent (the equivalence gate), so *which*
//!   order completions land in carries no information.
//!
//! The socket carries exactly the frames defined in [`crate::protocol`].
//! A connection may interleave requests for any tenants (the tenant id
//! travels in each request); a malformed frame gets a `Protocol` error
//! response and the connection is closed, since framing can no longer be
//! trusted mid-stream.

use crate::engine::ServeEngine;
use crate::protocol::{
    decode_response, encode_request, encode_response, read_frame_bytes, ProtocolError, Request,
    Response, ResponseBody, Verb, MAGIC_REQUEST, MAGIC_RESPONSE, MAX_PIPELINE,
};
use std::collections::{HashMap, VecDeque};
use std::io::Write;
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::Path;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{mpsc, Arc, Condvar, Mutex};
use std::time::Duration;

/// Worker-pool size when [`ServerOpts::workers`] is 0.
const DEFAULT_WORKERS: usize = 4;

/// Server run policy.
#[derive(Debug, Clone, Copy, Default)]
pub struct ServerOpts {
    /// Stop accepting and return once this many requests have been served
    /// (`None` = run until the process dies). Lets tests and demos run the
    /// server on a plain thread with a deterministic exit.
    pub max_requests: Option<u64>,
    /// Fixed executor pool size (`0` = default of 4). Workers are shared by
    /// all connections; per-connection reader and writer threads only do
    /// framing I/O.
    pub workers: usize,
}

/// Per-connection shared state between its reader, its writer, and the jobs
/// in flight for it. Deliberately does NOT hold the reply `Sender`: the
/// writer thread owns an `Arc<Conn>`, and the writer must see its channel
/// close once the reader, the pool slot, and every in-flight job have
/// dropped their sender clones.
struct Conn {
    /// Requests decoded but not yet answered (queued + executing + replies
    /// not yet written). The reader's backpressure bound.
    outstanding: Mutex<usize>,
    cv: Condvar,
    /// Set by the writer when the client is unreachable, so the reader
    /// stops admitting instead of waiting on replies that cannot be sent.
    dead: AtomicBool,
}

impl Conn {
    /// Reader side: admit one request (bumps outstanding).
    fn admit(&self) {
        *self.outstanding.lock().unwrap() += 1;
    }

    /// Writer side: one reply fully handled (written or dropped).
    fn complete(&self) {
        let mut n = self.outstanding.lock().unwrap();
        *n -= 1;
        drop(n);
        self.cv.notify_all();
    }

    /// Reader side: block until fewer than `depth` requests are
    /// outstanding, or the connection has died.
    fn wait_below(&self, depth: usize) -> bool {
        let mut n = self.outstanding.lock().unwrap();
        while *n >= depth && !self.dead.load(Ordering::SeqCst) {
            let (g, _) = self.cv.wait_timeout(n, Duration::from_millis(50)).unwrap();
            n = g;
        }
        !self.dead.load(Ordering::SeqCst)
    }
}

/// One connection's job queue inside the pool.
struct ConnQueue {
    jobs: VecDeque<Request>,
    /// Reply channel into the connection's writer; workers clone it per
    /// job, and the slot's copy drops when the slot is swept.
    tx: mpsc::Sender<Vec<u8>>,
    /// Reader exited; the slot is swept once its queue drains.
    closed: bool,
}

struct PoolState {
    conns: Vec<Option<ConnQueue>>,
    /// Round-robin cursor so workers visit connections fairly.
    rr: usize,
    stop: bool,
}

/// The shared worker pool: one mutex over every connection queue (queues are
/// tiny — bounded by each connection's pipeline depth).
struct Pool {
    state: Mutex<PoolState>,
    cv: Condvar,
}

impl Pool {
    fn new() -> Arc<Self> {
        Arc::new(Self {
            state: Mutex::new(PoolState {
                conns: Vec::new(),
                rr: 0,
                stop: false,
            }),
            cv: Condvar::new(),
        })
    }

    fn register(&self, tx: mpsc::Sender<Vec<u8>>) -> usize {
        let mut st = self.state.lock().unwrap();
        let slot = ConnQueue {
            jobs: VecDeque::new(),
            tx,
            closed: false,
        };
        for (i, c) in st.conns.iter_mut().enumerate() {
            if c.is_none() {
                *c = Some(slot);
                return i;
            }
        }
        st.conns.push(Some(slot));
        st.conns.len() - 1
    }

    fn submit(&self, slot: usize, req: Request) {
        let mut st = self.state.lock().unwrap();
        if let Some(q) = st.conns[slot].as_mut() {
            q.jobs.push_back(req);
        }
        drop(st);
        self.cv.notify_one();
    }

    /// Reader exited: mark the slot for sweeping and wake a worker to do it.
    fn close(&self, slot: usize) {
        let mut st = self.state.lock().unwrap();
        if let Some(q) = st.conns[slot].as_mut() {
            q.closed = true;
        }
        drop(st);
        self.cv.notify_all();
    }

    /// Worker side: next job, round-robin across connections. Sweeps slots
    /// whose reader has exited and whose queue is drained. Returns `None`
    /// when stopped and every queue is empty (workers drain before exiting,
    /// so accepted requests are always answered).
    fn next_job(&self) -> Option<(mpsc::Sender<Vec<u8>>, Request)> {
        let mut st = self.state.lock().unwrap();
        loop {
            let n = st.conns.len();
            let mut found = None;
            for k in 0..n {
                let i = (st.rr + k) % n;
                let Some(q) = st.conns[i].as_mut() else {
                    continue;
                };
                if let Some(req) = q.jobs.pop_front() {
                    found = Some((i, q.tx.clone(), req));
                    break;
                }
                if q.closed {
                    st.conns[i] = None;
                }
            }
            if let Some((i, tx, req)) = found {
                st.rr = i + 1;
                return Some((tx, req));
            }
            if st.stop {
                return None;
            }
            st = self.cv.wait(st).unwrap();
        }
    }

    fn stop(&self) {
        self.state.lock().unwrap().stop = true;
        self.cv.notify_all();
    }

    /// Drop every remaining slot (run after workers have been joined), so
    /// per-connection writer channels close and their threads exit.
    fn clear(&self) {
        self.state.lock().unwrap().conns.clear();
    }
}

/// Serve `engine` on a Unix socket at `path` until `max_requests` requests
/// have been answered. Returns the number served. Any stale socket file at
/// `path` is replaced.
pub fn serve_unix(path: &Path, engine: &ServeEngine, opts: ServerOpts) -> std::io::Result<u64> {
    let _ = std::fs::remove_file(path);
    let listener = UnixListener::bind(path)?;
    listener.set_nonblocking(true)?;
    let served = Arc::new(AtomicU64::new(0));
    let pool = Pool::new();

    let n_workers = if opts.workers == 0 {
        DEFAULT_WORKERS
    } else {
        opts.workers
    };
    let workers: Vec<_> = (0..n_workers)
        .map(|k| {
            let pool = Arc::clone(&pool);
            let engine = engine.clone();
            std::thread::Builder::new()
                .name(format!("ifet-serve-worker-{k}"))
                .spawn(move || {
                    while let Some((tx, req)) = pool.next_job() {
                        // Replies go out in completion order; the writer
                        // balances the reader's admit. A send to a closed
                        // channel means the connection is already torn down.
                        let bytes = encode_response(&engine.handle(req));
                        let _ = tx.send(bytes);
                    }
                })
                .expect("spawn serve worker")
        })
        .collect();

    let mut readers = Vec::new();
    let mut writers = Vec::new();
    loop {
        if let Some(max) = opts.max_requests {
            if served.load(Ordering::SeqCst) >= max {
                break;
            }
        }
        match listener.accept() {
            Ok((stream, _addr)) => {
                stream.set_nonblocking(false)?;
                let (tx, rx) = mpsc::channel::<Vec<u8>>();
                let conn = Arc::new(Conn {
                    outstanding: Mutex::new(0),
                    cv: Condvar::new(),
                    dead: AtomicBool::new(false),
                });
                let slot = pool.register(tx.clone());
                let shutdown = stream.try_clone()?;
                let write_stream = stream.try_clone()?;
                writers.push(std::thread::spawn({
                    let conn = Arc::clone(&conn);
                    let served = Arc::clone(&served);
                    move || writer_loop(write_stream, rx, &conn, &served)
                }));
                readers.push((
                    std::thread::spawn({
                        let pool = Arc::clone(&pool);
                        move || reader_loop(stream, &pool, slot, &conn, tx)
                    }),
                    shutdown,
                ));
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(2));
            }
            Err(e) => return Err(e),
        }
    }
    drop(listener);
    let _ = std::fs::remove_file(path);
    // Teardown order matters: unblock parked readers first, then drain the
    // pool (workers answer everything already admitted), then drop the last
    // reply senders so writers see their channels close and exit.
    for (_, stream) in &readers {
        let _ = stream.shutdown(std::net::Shutdown::Both);
    }
    for (r, _) in readers {
        let _ = r.join();
    }
    pool.stop();
    for w in workers {
        let _ = w.join();
    }
    pool.clear();
    for w in writers {
        let _ = w.join();
    }
    Ok(served.load(Ordering::SeqCst))
}

/// Per-connection reader: decode frames, enforce the pipeline depth, hand
/// decoded jobs to the pool. Depth is 1 (v1 single-shot cadence: the reply
/// is written before the next request is admitted) until a `Hello` raises
/// it for the rest of the connection.
fn reader_loop(
    mut stream: UnixStream,
    pool: &Pool,
    slot: usize,
    conn: &Arc<Conn>,
    tx: mpsc::Sender<Vec<u8>>,
) {
    let mut depth: usize = 1;
    loop {
        if !conn.wait_below(depth) {
            break; // writer lost the client; nothing more can be answered
        }
        match read_frame_bytes(&mut stream, MAGIC_REQUEST) {
            Ok(None) | Err(_) => break,
            Ok(Some(Ok(frame))) => match crate::protocol::decode_request(&frame) {
                Ok(req) => {
                    if let Verb::Hello { max_pipeline } = req.verb {
                        depth = max_pipeline.clamp(1, MAX_PIPELINE) as usize;
                    }
                    conn.admit();
                    pool.submit(slot, req);
                }
                Err(e) => {
                    reject_and_close(conn, &tx, &e);
                    break;
                }
            },
            Ok(Some(Err(e))) => {
                reject_and_close(conn, &tx, &e);
                break;
            }
        }
    }
    pool.close(slot);
}

/// Framing is lost: answer with a typed protocol error (request id 0 —
/// corrupted bytes are attributable to no session) through the writer, then
/// let the connection close.
fn reject_and_close(conn: &Conn, tx: &mpsc::Sender<Vec<u8>>, e: &ProtocolError) {
    let rsp = encode_response(&Response {
        request_id: 0,
        tenant: 0,
        body: ResponseBody::Err {
            code: crate::protocol::ErrorCode::Protocol,
            message: e.to_string(),
        },
    });
    conn.admit();
    let _ = tx.send(rsp);
}

/// Per-connection writer: replies leave in completion order. Every message
/// balances one `admit` whether or not the write succeeds, so the reader's
/// backpressure can never wedge on a vanished client.
fn writer_loop(
    mut stream: UnixStream,
    rx: mpsc::Receiver<Vec<u8>>,
    conn: &Conn,
    served: &AtomicU64,
) {
    let mut alive = true;
    while let Ok(bytes) = rx.recv() {
        if alive {
            match stream.write_all(&bytes) {
                Ok(()) => {
                    served.fetch_add(1, Ordering::SeqCst);
                }
                Err(_) => {
                    alive = false;
                    conn.dead.store(true, Ordering::SeqCst);
                    let _ = stream.shutdown(std::net::Shutdown::Both);
                }
            }
        }
        conn.complete();
    }
}

/// Why a client call failed.
#[derive(Debug)]
pub enum ClientError {
    Io(std::io::Error),
    Protocol(ProtocolError),
    /// The server closed the connection (shutdown, `max_requests` reached,
    /// or a mid-stream drop). Broken pipes and resets land here, never as a
    /// raw `Io`.
    Disconnected,
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "i/o: {e}"),
            ClientError::Protocol(e) => write!(f, "protocol: {e}"),
            ClientError::Disconnected => write!(f, "server closed the connection"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<std::io::Error> for ClientError {
    fn from(e: std::io::Error) -> Self {
        map_io(e)
    }
}

/// Disconnection-shaped I/O errors become the typed [`ClientError::Disconnected`].
fn map_io(e: std::io::Error) -> ClientError {
    use std::io::ErrorKind::*;
    match e.kind() {
        BrokenPipe | ConnectionReset | ConnectionAborted | UnexpectedEof | WriteZero => {
            ClientError::Disconnected
        }
        _ => ClientError::Io(e),
    }
}

/// A request/response client over a Unix socket.
///
/// Two modes:
/// - **single-shot** ([`Self::call`]): send one request, wait for its reply
///   — works against any server version;
/// - **pipelined** ([`Self::hello`], then [`Self::submit`] /
///   [`Self::await_response`]): many requests outstanding, replies arriving
///   in completion order and matched by request id (out-of-order replies
///   are buffered until awaited). Request ids must be unique among a
///   connection's outstanding requests.
pub struct Client {
    stream: UnixStream,
    /// Replies that arrived while awaiting a different request id.
    pending: HashMap<u64, Response>,
}

impl Client {
    pub fn connect(path: &Path) -> std::io::Result<Self> {
        Ok(Self {
            stream: UnixStream::connect(path)?,
            pending: HashMap::new(),
        })
    }

    /// Send one request and wait for its response.
    pub fn call(&mut self, req: &Request) -> Result<Response, ClientError> {
        self.submit(req)?;
        self.await_response(req.request_id)
    }

    /// Negotiate pipelined mode: ask for up to `max_pipeline` outstanding
    /// requests and return the server's granted depth.
    pub fn hello(&mut self, max_pipeline: u32) -> Result<u32, ClientError> {
        let rsp = self.call(&Request {
            request_id: 0,
            tenant: 0,
            verb: Verb::Hello { max_pipeline },
        })?;
        match rsp.body {
            ResponseBody::HelloOk { max_pipeline, .. } => Ok(max_pipeline),
            // A v1 server answers `Hello` with an unknown-verb protocol
            // error; surface it as the protocol mismatch it is.
            ResponseBody::Err { .. } => Err(ClientError::Protocol(ProtocolError::UnknownVerb(6))),
            _ => Err(ClientError::Protocol(ProtocolError::UnknownStatus(6))),
        }
    }

    /// Fire a request without waiting for its reply (pipelining). The reply
    /// is collected later by [`Self::await_response`] with the same id.
    pub fn submit(&mut self, req: &Request) -> Result<(), ClientError> {
        self.stream
            .write_all(&encode_request(req))
            .map_err(map_io)?;
        Ok(())
    }

    /// Wait for the reply to `request_id`, buffering any other replies that
    /// arrive first (completion order need not match submission order).
    pub fn await_response(&mut self, request_id: u64) -> Result<Response, ClientError> {
        if let Some(rsp) = self.pending.remove(&request_id) {
            return Ok(rsp);
        }
        loop {
            match read_frame_bytes(&mut self.stream, MAGIC_RESPONSE).map_err(map_io)? {
                None => return Err(ClientError::Disconnected),
                Some(Ok(frame)) => {
                    let rsp = decode_response(&frame).map_err(ClientError::Protocol)?;
                    if rsp.request_id == request_id {
                        return Ok(rsp);
                    }
                    self.pending.insert(rsp.request_id, rsp);
                }
                Some(Err(e)) => return Err(ClientError::Protocol(e)),
            }
        }
    }
}
