//! Cross-session MLP batching: classification and IATF-generation requests
//! from *all* tenants funnel through one worker that drains the whole queue
//! each cycle and runs same-artifact jobs back-to-back.
//!
//! Why this is free, determinism-wise: the classifier's scanline path
//! already assembles features SoA and runs `Mlp::predict_batch`, which is
//! bit-identical to row-at-a-time inference at every width (PR 6's pinned
//! invariant), and its scratch pools are bit-identical whether warm or cold
//! (PR 2). Grouping jobs by artifact therefore changes only *when* work
//! runs — same-artifact jobs reuse warm predictor pools and the frames the
//! first job paged in — never the bytes a job returns. That is what lets
//! the equivalence gate demand byte-identical responses under any
//! interleaving.

use crate::engine::SharedSession;
use crate::error::ServeError;
use ifet_obs as obs;
use ifet_tf::TransferFunction1D;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc;
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;

/// A batched unit of MLP work.
pub(crate) enum JobKind {
    /// Data-space extraction mask at `step` with certainty threshold `tau`.
    Classify { step: u32, tau: f32 },
    /// IATF-generated transfer function for the frame at `step`.
    GenerateTf { step: u32 },
}

/// What a job produced.
pub(crate) enum JobOut {
    Mask { voxels: u64, words: Vec<u64> },
    Tf(TransferFunction1D),
}

pub(crate) struct Job {
    session: Arc<SharedSession>,
    kind: JobKind,
    reply: mpsc::Sender<Result<JobOut, ServeError>>,
}

#[derive(Default)]
struct Queue {
    jobs: VecDeque<Job>,
    stop: bool,
}

/// Monotonic batching counters (engine-wide, surfaced by `report-stats`).
#[derive(Default)]
pub(crate) struct BatchCounters {
    pub cycles: AtomicU64,
    pub jobs: AtomicU64,
    pub rows: AtomicU64,
}

pub(crate) struct Batcher {
    shared: Arc<(Mutex<Queue>, Condvar)>,
    pub counters: Arc<BatchCounters>,
    worker: Option<JoinHandle<()>>,
}

impl Batcher {
    pub fn start() -> Self {
        let shared = Arc::new((Mutex::new(Queue::default()), Condvar::new()));
        let counters = Arc::new(BatchCounters::default());
        let worker = {
            let shared = Arc::clone(&shared);
            let counters = Arc::clone(&counters);
            std::thread::Builder::new()
                .name("ifet-serve-batch".into())
                .spawn(move || worker_loop(&shared, &counters))
                .expect("spawn batch worker")
        };
        Self {
            shared,
            counters,
            worker: Some(worker),
        }
    }

    /// Enqueue a job and wake the worker. The caller blocks on the reply
    /// channel, so per-tenant in-flight accounting covers time spent queued.
    pub fn submit(&self, session: Arc<SharedSession>, kind: JobKind) -> Result<JobOut, ServeError> {
        let (lock, cv) = &*self.shared;
        let reply_rx = {
            let (tx, rx) = mpsc::channel();
            let mut q = lock.lock().unwrap_or_else(|e| e.into_inner());
            q.jobs.push_back(Job {
                session,
                kind,
                reply: tx,
            });
            cv.notify_one();
            rx
        };
        match reply_rx.recv() {
            Ok(result) => result,
            Err(_) => Err(ServeError::Session {
                reason: "batch worker unavailable".into(),
            }),
        }
    }
}

impl Drop for Batcher {
    fn drop(&mut self) {
        let (lock, cv) = &*self.shared;
        {
            let mut q = lock.lock().unwrap_or_else(|e| e.into_inner());
            q.stop = true;
        }
        cv.notify_all();
        if let Some(w) = self.worker.take() {
            let _ = w.join();
        }
    }
}

fn worker_loop(shared: &(Mutex<Queue>, Condvar), counters: &BatchCounters) {
    let (lock, cv) = shared;
    loop {
        // Drain the *entire* queue in one sweep: everything pending at this
        // instant, across all tenants, becomes one batch cycle.
        let batch: Vec<Job> = {
            let mut q = lock.lock().unwrap_or_else(|e| e.into_inner());
            while q.jobs.is_empty() && !q.stop {
                q = cv.wait(q).unwrap_or_else(|e| e.into_inner());
            }
            if q.jobs.is_empty() && q.stop {
                return;
            }
            q.jobs.drain(..).collect()
        };

        // Group by artifact, preserving first-arrival order of groups and
        // arrival order within each group, so same-artifact jobs run
        // back-to-back against warm predictor pools and resident frames.
        let mut order: Vec<&str> = Vec::new();
        for job in &batch {
            if !order.iter().any(|k| *k == job.session.key()) {
                order.push(job.session.key());
            }
        }
        let order: Vec<String> = order.into_iter().map(String::from).collect();

        let njobs = batch.len() as u64;
        let mut rows = 0u64;
        let mut jobs: Vec<Option<Job>> = batch.into_iter().map(Some).collect();
        for key in &order {
            for slot in jobs.iter_mut() {
                let belongs = slot
                    .as_ref()
                    .is_some_and(|j| j.session.key() == key.as_str());
                if !belongs {
                    continue;
                }
                let job = slot.take().expect("slot checked non-empty");
                rows += run_job(job);
            }
        }

        counters.cycles.fetch_add(1, Ordering::Relaxed);
        counters.jobs.fetch_add(njobs, Ordering::Relaxed);
        counters.rows.fetch_add(rows, Ordering::Relaxed);
        obs::counter_runtime("serve.batch.cycles", 1);
        obs::counter_runtime("serve.batch.jobs", njobs);
        obs::counter_runtime("serve.batch.rows", rows);
        obs::flush();
    }
}

/// Execute one job and send its reply; returns the MLP rows it consumed.
fn run_job(job: Job) -> u64 {
    let session = job.session.session();
    let (result, rows) = match job.kind {
        JobKind::Classify { step, tau } => match session.try_extract_data_space(step, tau) {
            Ok(Some(mask)) => {
                let rows = session.series().dims().len() as u64;
                (
                    Ok(JobOut::Mask {
                        voxels: mask.count() as u64,
                        words: mask.words().to_vec(),
                    }),
                    rows,
                )
            }
            Ok(None) => (Err(classify_refusal(job.session.as_ref(), step)), 0),
            Err(e) => (
                Err(ServeError::Session {
                    reason: e.to_string(),
                }),
                0,
            ),
        },
        JobKind::GenerateTf { step } => match session.try_adaptive_tf_at_step(step) {
            Ok(Some(tf)) => {
                let rows = session.series().dims().len() as u64;
                (Ok(JobOut::Tf(tf)), rows)
            }
            Ok(None) => (Err(generate_refusal(job.session.as_ref(), step)), 0),
            Err(e) => (
                Err(ServeError::Session {
                    reason: e.to_string(),
                }),
                0,
            ),
        },
    };
    let _ = job.reply.send(result);
    rows
}

fn classify_refusal(shared: &SharedSession, step: u32) -> ServeError {
    if shared.session().classifier().is_none() {
        ServeError::Session {
            reason: "no trained classifier in this session".into(),
        }
    } else {
        ServeError::BadRequest {
            reason: format!("step {step} not in the series"),
        }
    }
}

fn generate_refusal(shared: &SharedSession, step: u32) -> ServeError {
    if shared.session().iatf().is_none() {
        ServeError::Session {
            reason: "no trained IATF in this session".into(),
        }
    } else {
        ServeError::BadRequest {
            reason: format!("step {step} not in the series"),
        }
    }
}
