//! The multi-tenant serving engine: resident shared sessions, one global
//! cache budget, per-tenant admission control, typed errors.
//!
//! # Residency model
//!
//! Sessions are keyed by `.ifet` artifact path. The first `open` loads the
//! artifact against an [`OutOfCoreSeries`] opened on the engine's *shared*
//! [`CacheBudgetHandle`]; later opens of the same artifact — by any tenant —
//! bind to the same resident [`SharedSession`] (an `Arc`, enabled by the
//! `FrameSource for Arc<S>` passthrough). All verbs take `&self` on the
//! session, so tenants serve concurrently from one copy; a session leaves
//! memory when the last tenant bound to it closes.
//!
//! # Fairness and backpressure
//!
//! Admission is per-tenant: each tenant may have at most
//! [`ServeConfig::max_inflight_per_tenant`] requests executing (or queued at
//! the batcher / blocked on paging) at once. The bound is checked at entry —
//! a request over the bound is *rejected immediately* with a typed
//! `Overloaded` error rather than queued, so one greedy tenant can saturate
//! only its own lane while the byte budget is contended, never the accept
//! path of others. Counters satisfy `accepted + rejected == sent` at any
//! quiescent point.
//!
//! # Why responses are schedule-independent
//!
//! Every verb except `report-stats` computes from (artifact bytes, request
//! arguments) alone through code whose outputs are pinned bit-identical
//! against paging order, batch width, and thread count by the equivalence
//! suites of PRs 4–7. The engine adds no response state of its own — no
//! timestamps, no sequence numbers — so a concurrent run must produce the
//! same response bytes as a serial replay. `report-stats` is the deliberate
//! exception (it *reports* scheduling), mirroring how runtime counters are
//! stripped from stable traces.

use crate::batch::{Batcher, JobKind, JobOut};
use crate::error::ServeError;
use crate::protocol::{
    Axis, ErrorCode, Request, Response, ResponseBody, StatsReport, Verb, WireCriterion,
};
use ifet_core::prelude::*;
use ifet_obs as obs;
use ifet_render::{render_slice, SliceAxis};
use ifet_volume::{CacheBudget, CacheBudgetHandle, FrameSource, OutOfCoreSeries, ReadFaultHook};
use std::collections::{BTreeMap, HashMap};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, Weak};

/// Engine-wide policy knobs.
#[derive(Clone)]
pub struct ServeConfig {
    /// The single budget every tenant's frame data pages through.
    pub budget: CacheBudget,
    /// Per-tenant in-flight bound; requests beyond it are rejected
    /// `Overloaded`, never queued.
    pub max_inflight_per_tenant: usize,
    /// Read-ahead depth for newly opened series (0 = no prefetch).
    pub prefetch: usize,
    /// Resident-byte quota applied to each opened artifact's residency
    /// group (`None` = unlimited). A tenant whose artifact is over quota
    /// evicts its *own* LRU frames first; tenants sharing an artifact share
    /// its quota. See `CacheBudgetHandle::set_group_quota`.
    pub tenant_quota_bytes: Option<u64>,
}

impl Default for ServeConfig {
    fn default() -> Self {
        Self {
            budget: CacheBudget::Frames(8),
            max_inflight_per_tenant: 4,
            prefetch: 0,
            tenant_quota_bytes: None,
        }
    }
}

/// One artifact resident in the engine: the paged series and the loaded
/// session, shared by every tenant bound to it.
pub struct SharedSession {
    key: String,
    series: Arc<OutOfCoreSeries>,
    session: VisSession<Arc<OutOfCoreSeries>>,
    /// Residency group this artifact's bytes are attributed to in the shared
    /// budget (assigned at first open; see `ServeConfig::tenant_quota_bytes`).
    group: u64,
}

impl SharedSession {
    /// The artifact path this session was loaded from.
    pub fn key(&self) -> &str {
        &self.key
    }

    /// The residency group this artifact pages under.
    pub fn residency_group(&self) -> u64 {
        self.group
    }

    /// The resident session (read-only under serving).
    pub fn session(&self) -> &VisSession<Arc<OutOfCoreSeries>> {
        &self.session
    }

    /// The shared paged series (for cache stats and fault injection).
    pub fn series(&self) -> &OutOfCoreSeries {
        &self.series
    }
}

/// Per-tenant admission state and counters.
#[derive(Default)]
struct Tenant {
    inflight: AtomicUsize,
    sent: AtomicU64,
    accepted: AtomicU64,
    rejected: AtomicU64,
    completed: AtomicU64,
    max_depth: AtomicU64,
    session: Mutex<Option<Arc<SharedSession>>>,
}

impl Tenant {
    fn note_depth(&self, depth: usize) {
        self.max_depth.fetch_max(depth as u64, Ordering::Relaxed);
    }
}

struct Inner {
    cfg: ServeConfig,
    budget: CacheBudgetHandle,
    /// Artifact key → resident session. `Weak` so residency ends with the
    /// last tenant binding, not with the map entry.
    artifacts: Mutex<HashMap<String, Weak<SharedSession>>>,
    tenants: Mutex<BTreeMap<u32, Arc<Tenant>>>,
    batcher: Batcher,
    /// Fault hooks by artifact key, applied at open time (chaos testing).
    fault_hooks: Mutex<HashMap<String, ReadFaultHook>>,
    /// Residency-group id allocator (0 is the budget's default group, never
    /// handed to an artifact).
    next_group: AtomicU64,
}

/// The multi-tenant serving engine. Cheap to clone (shared state); all
/// methods take `&self`, so one engine serves any number of client threads.
#[derive(Clone)]
pub struct ServeEngine {
    inner: Arc<Inner>,
}

impl ServeEngine {
    pub fn new(cfg: ServeConfig) -> Self {
        let budget = CacheBudgetHandle::new(cfg.budget);
        Self {
            inner: Arc::new(Inner {
                cfg,
                budget,
                artifacts: Mutex::new(HashMap::new()),
                tenants: Mutex::new(BTreeMap::new()),
                batcher: Batcher::start(),
                fault_hooks: Mutex::new(HashMap::new()),
                next_group: AtomicU64::new(1),
            }),
        }
    }

    /// The shared budget every tenant pages through.
    pub fn budget(&self) -> &CacheBudgetHandle {
        &self.inner.budget
    }

    /// Install (or clear) a read-fault hook for an artifact key. Applied to
    /// the artifact's series when it is (re)opened — register before `open`.
    /// Chaos tests use this to inject delays and transient I/O faults.
    pub fn set_read_fault_hook(&self, artifact: &str, hook: Option<ReadFaultHook>) {
        let mut hooks = lock(&self.inner.fault_hooks);
        match hook {
            Some(h) => {
                if let Some(shared) = self.resident(artifact) {
                    shared.series().set_read_fault_hook(Some(h.clone()));
                }
                hooks.insert(artifact.to_string(), h);
            }
            None => {
                if let Some(shared) = self.resident(artifact) {
                    shared.series().set_read_fault_hook(None);
                }
                hooks.remove(artifact);
            }
        }
    }

    /// The resident shared session for an artifact, if any tenant holds it.
    pub fn resident(&self, artifact: &str) -> Option<Arc<SharedSession>> {
        lock(&self.inner.artifacts)
            .get(artifact)
            .and_then(Weak::upgrade)
    }

    /// Handle one decoded request: admission, execution, typed reply.
    pub fn handle(&self, req: Request) -> Response {
        let tenant = self.tenant_entry(req.tenant);
        tenant.sent.fetch_add(1, Ordering::SeqCst);
        let depth = tenant.inflight.fetch_add(1, Ordering::SeqCst) + 1;
        tenant.note_depth(depth);
        if depth > self.inner.cfg.max_inflight_per_tenant {
            tenant.inflight.fetch_sub(1, Ordering::SeqCst);
            tenant.rejected.fetch_add(1, Ordering::SeqCst);
            obs::counter_runtime_dyn(format!("serve.tenant.{}.rejected", req.tenant), 1);
            let err = ServeError::Overloaded {
                tenant: req.tenant,
                inflight: depth - 1,
                bound: self.inner.cfg.max_inflight_per_tenant,
            };
            return error_response(&req, &err);
        }
        tenant.accepted.fetch_add(1, Ordering::SeqCst);
        obs::counter_runtime_dyn(format!("serve.tenant.{}.accepted", req.tenant), 1);
        let body = self.execute(&tenant, &req).unwrap_or_else(|e| err_body(&e));
        tenant.inflight.fetch_sub(1, Ordering::SeqCst);
        tenant.completed.fetch_add(1, Ordering::SeqCst);
        Response {
            request_id: req.request_id,
            tenant: req.tenant,
            body,
        }
    }

    /// Byte-in/byte-out entry: decode a request frame, handle it, encode
    /// the response frame. A malformed frame yields an error response with
    /// `request_id`/`tenant` zero and code `Protocol` — corrupted bytes can
    /// never be attributed to a session (the CRC covers the whole payload).
    pub fn handle_wire(&self, frame: &[u8]) -> Vec<u8> {
        let rsp = match crate::protocol::decode_request(frame) {
            Ok(req) => self.handle(req),
            Err(e) => Response {
                request_id: 0,
                tenant: 0,
                body: ResponseBody::Err {
                    code: ErrorCode::Protocol,
                    message: e.to_string(),
                },
            },
        };
        crate::protocol::encode_response(&rsp)
    }

    /// Snapshot a tenant's counters (test and stats-verb surface).
    pub fn tenant_stats(&self, tenant: u32) -> StatsReport {
        let t = self.tenant_entry(tenant);
        let c = &self.inner.batcher.counters;
        let b = self.inner.budget.stats();
        StatsReport {
            sent: t.sent.load(Ordering::SeqCst),
            accepted: t.accepted.load(Ordering::SeqCst),
            rejected: t.rejected.load(Ordering::SeqCst),
            completed: t.completed.load(Ordering::SeqCst),
            max_depth: t.max_depth.load(Ordering::SeqCst),
            batch_jobs: c.jobs.load(Ordering::SeqCst),
            batch_cycles: c.cycles.load(Ordering::SeqCst),
            batch_rows: c.rows.load(Ordering::SeqCst),
            evictions: b.evictions,
            quota_evictions: b.quota_evictions,
            idle_evictions: b.idle_evictions,
        }
    }

    fn tenant_entry(&self, id: u32) -> Arc<Tenant> {
        let mut map = lock(&self.inner.tenants);
        Arc::clone(map.entry(id).or_default())
    }

    fn execute(&self, tenant: &Tenant, req: &Request) -> Result<ResponseBody, ServeError> {
        match &req.verb {
            Verb::Open { artifact, data_dir } => {
                let shared = self.open_shared(artifact, data_dir)?;
                let session = shared.session();
                let series = session.series();
                let steps = series.steps();
                let d = series.dims();
                let body = ResponseBody::OpenOk {
                    frames: series.len() as u32,
                    dims: (d.nx as u32, d.ny as u32, d.nz as u32),
                    first_step: steps.first().copied().unwrap_or(0),
                    last_step: steps.last().copied().unwrap_or(0),
                    has_iatf: session.iatf().is_some(),
                    has_classifier: session.classifier().is_some(),
                    tracks: session.tracks().len() as u32,
                };
                *lock(&tenant.session) = Some(shared);
                Ok(body)
            }
            Verb::Classify { step, tau } => {
                let shared = self.bound_session(tenant, req.tenant)?;
                let _active = GroupActivity::enter(&self.inner.budget, shared.group);
                match self.inner.batcher.submit(
                    shared,
                    JobKind::Classify {
                        step: *step,
                        tau: *tau,
                    },
                )? {
                    JobOut::Mask { voxels, words } => {
                        Ok(ResponseBody::ClassifyOk { voxels, words })
                    }
                    JobOut::Tf(_) => Err(ServeError::Session {
                        reason: "batch worker returned mismatched output".into(),
                    }),
                }
            }
            Verb::Track { criterion, seeds } => {
                let shared = self.bound_session(tenant, req.tenant)?;
                let _active = GroupActivity::enter(&self.inner.budget, shared.group);
                let spec = match criterion {
                    WireCriterion::FixedBand { lo, hi } => {
                        CriterionSpec::FixedBand { lo: *lo, hi: *hi }
                    }
                    WireCriterion::AdaptiveTf { tau } => CriterionSpec::AdaptiveTf { tau: *tau },
                    WireCriterion::DataSpace { tau } => CriterionSpec::DataSpace { tau: *tau },
                };
                let seeds: Vec<Seed4> = seeds
                    .iter()
                    .map(|&(t, x, y, z)| (t as usize, x as usize, y as usize, z as usize))
                    .collect();
                let result = shared
                    .session()
                    .track_spec(&spec, &seeds)
                    .map_err(|e| match e {
                        SessionError::Grow(_) => ServeError::BadRequest {
                            reason: e.to_string(),
                        },
                        other => ServeError::Session {
                            reason: other.to_string(),
                        },
                    })?;
                Ok(ResponseBody::TrackOk {
                    voxels_per_frame: result
                        .report
                        .voxels_per_frame
                        .iter()
                        .map(|&v| v as u32)
                        .collect(),
                    events: result.report.events.len() as u32,
                })
            }
            Verb::RenderSlice {
                step,
                axis,
                k,
                adaptive,
            } => {
                let shared = self.bound_session(tenant, req.tenant)?;
                let _active = GroupActivity::enter(&self.inner.budget, shared.group);
                self.render_slice(&shared, *step, *axis, *k, *adaptive)
            }
            Verb::ReportStats => Ok(ResponseBody::StatsOk(self.tenant_stats(req.tenant))),
            Verb::Close => {
                *lock(&tenant.session) = None;
                Ok(ResponseBody::CloseOk)
            }
            // The handshake is connection-level state owned by the transport
            // (the server flips the connection into pipelined mode when it
            // sees the verb go by); the engine just grants a clamped depth so
            // the reply is deterministic and transport-independent.
            Verb::Hello { max_pipeline } => Ok(ResponseBody::HelloOk {
                version: crate::protocol::PROTOCOL_VERSION,
                max_pipeline: (*max_pipeline).clamp(1, crate::protocol::MAX_PIPELINE),
            }),
        }
    }

    fn render_slice(
        &self,
        shared: &Arc<SharedSession>,
        step: u32,
        axis: Axis,
        k: u32,
        adaptive: bool,
    ) -> Result<ResponseBody, ServeError> {
        let session = shared.session();
        let series = session.series();
        let frame = series
            .frame_at_step(step)
            .map_err(|e| ServeError::Session {
                reason: e.to_string(),
            })?
            .ok_or_else(|| ServeError::BadRequest {
                reason: format!("step {step} not in the series"),
            })?;
        let axis = match axis {
            Axis::X => SliceAxis::X,
            Axis::Y => SliceAxis::Y,
            Axis::Z => SliceAxis::Z,
        };
        let d = frame.dims();
        let extent = match axis {
            SliceAxis::X => d.nx,
            SliceAxis::Y => d.ny,
            SliceAxis::Z => d.nz,
        };
        if k as usize >= extent {
            return Err(ServeError::BadRequest {
                reason: format!("slice index {k} out of range (extent {extent})"),
            });
        }
        let mut img = render_slice(&frame, axis, k as usize, session.colormap);
        if adaptive {
            // IATF-generated opacity modulates the slice — the generation
            // itself is MLP work, so it goes through the batcher like any
            // other tenant's.
            let tf = match self
                .inner
                .batcher
                .submit(Arc::clone(shared), JobKind::GenerateTf { step })?
            {
                JobOut::Tf(tf) => tf,
                JobOut::Mask { .. } => {
                    return Err(ServeError::Session {
                        reason: "batch worker returned mismatched output".into(),
                    })
                }
            };
            let (w, h, data) = ifet_render::slice_data(&frame, axis, k as usize);
            for y in 0..h {
                for x in 0..w {
                    let o = tf.opacity_at(data[x + w * y]).clamp(0.0, 1.0);
                    let p = img.pixel(x, y);
                    img.set_pixel(x, y, [p[0] * o, p[1] * o, p[2] * o]);
                }
            }
        }
        let (w, h) = (img.width(), img.height());
        let rgb = img
            .as_slice()
            .iter()
            .map(|&c| (c.clamp(0.0, 1.0) * 255.0).round() as u8)
            .collect();
        Ok(ResponseBody::RenderSliceOk {
            width: w as u32,
            height: h as u32,
            rgb,
        })
    }

    fn bound_session(&self, tenant: &Tenant, id: u32) -> Result<Arc<SharedSession>, ServeError> {
        lock(&tenant.session)
            .as_ref()
            .map(Arc::clone)
            .ok_or(ServeError::NoSession { tenant: id })
    }

    /// Load (or rebind to) the shared session for an artifact. Holds the
    /// artifact map lock across the load so concurrent first-opens of the
    /// same artifact resolve to one resident copy; loading reads only
    /// sidecars and the artifact file, never frame payloads, so the lock is
    /// held for metadata I/O only.
    fn open_shared(
        &self,
        artifact: &str,
        data_dir: &str,
    ) -> Result<Arc<SharedSession>, ServeError> {
        let mut map = lock(&self.inner.artifacts);
        if let Some(shared) = map.get(artifact).and_then(Weak::upgrade) {
            return Ok(shared);
        }
        let paths =
            frame_paths(Path::new(data_dir)).map_err(|reason| ServeError::Open { reason })?;
        let series = OutOfCoreSeries::open_with(paths, &self.inner.budget, self.inner.cfg.prefetch)
            .map_err(|e| ServeError::Open {
                reason: e.to_string(),
            })?;
        if let Some(hook) = lock(&self.inner.fault_hooks).get(artifact) {
            series.set_read_fault_hook(Some(hook.clone()));
        }
        // Assign the artifact its residency group before any frame read so
        // every byte it pages is attributed (and quota-bounded) from the
        // start. Loading below reads only the artifact file, never frames.
        let group = self.inner.next_group.fetch_add(1, Ordering::Relaxed);
        series.set_residency_group(group);
        if let Some(q) = self.inner.cfg.tenant_quota_bytes {
            self.inner.budget.set_group_quota(group, Some(q));
        }
        let series = Arc::new(series);
        let session =
            VisSession::load(Arc::clone(&series), artifact).map_err(|e| ServeError::Open {
                reason: e.to_string(),
            })?;
        let shared = Arc::new(SharedSession {
            key: artifact.to_string(),
            series,
            session,
            group,
        });
        map.insert(artifact.to_string(), Arc::downgrade(&shared));
        Ok(shared)
    }
}

/// Frame files of a series directory: every `.raw`/`.rawz` under `dir`,
/// lexicographically sorted (the series itself orders by sidecar step).
/// `_truth` ground-truth companions written by `ifet generate` are not
/// data frames and are excluded, mirroring the CLI's series loader.
fn frame_paths(dir: &Path) -> Result<Vec<PathBuf>, String> {
    let entries = std::fs::read_dir(dir).map_err(|e| format!("{}: {e}", dir.display()))?;
    let mut paths: Vec<PathBuf> = entries
        .filter_map(|e| e.ok().map(|e| e.path()))
        .filter(|p| {
            matches!(
                p.extension().and_then(|e| e.to_str()),
                Some("raw") | Some("rawz")
            )
        })
        .filter(|p| {
            p.file_name()
                .and_then(|n| n.to_str())
                .map(|n| !n.contains("_truth"))
                .unwrap_or(true)
        })
        .collect();
    if paths.is_empty() {
        return Err(format!("no .raw/.rawz frames in {}", dir.display()));
    }
    paths.sort();
    Ok(paths)
}

fn lock<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

/// RAII activity marker for a residency group: while any request against an
/// artifact is executing, the budget's eviction policy deprioritizes that
/// artifact's frames (idle tenants' frames go first).
struct GroupActivity<'a> {
    budget: &'a CacheBudgetHandle,
    group: u64,
}

impl<'a> GroupActivity<'a> {
    fn enter(budget: &'a CacheBudgetHandle, group: u64) -> Self {
        budget.group_enter(group);
        Self { budget, group }
    }
}

impl Drop for GroupActivity<'_> {
    fn drop(&mut self) {
        self.budget.group_exit(self.group);
    }
}

fn err_body(e: &ServeError) -> ResponseBody {
    ResponseBody::Err {
        code: e.code(),
        message: e.to_string(),
    }
}

fn error_response(req: &Request, e: &ServeError) -> Response {
    Response {
        request_id: req.request_id,
        tenant: req.tenant,
        body: err_body(e),
    }
}
