//! Typed service errors: every refusal a request can hit maps to exactly
//! one [`ErrorCode`] on the wire, so clients can branch without parsing
//! messages and the fuzz suite can assert "typed error, never a panic".

use crate::protocol::ErrorCode;

/// Why the engine refused (or failed) a request.
#[derive(Debug, Clone, PartialEq)]
pub enum ServeError {
    /// The tenant is at its in-flight bound; the request was not queued.
    /// Backpressure, not failure: retry once earlier requests drain.
    Overloaded {
        tenant: u32,
        inflight: usize,
        bound: usize,
    },
    /// The verb needs an open session and this tenant has none.
    NoSession { tenant: u32 },
    /// Arguments were structurally valid but unusable.
    BadRequest { reason: String },
    /// Opening the artifact or its frame directory failed.
    Open { reason: String },
    /// The resident session refused or failed the operation (no trained
    /// model, paging I/O error, bad seeds…).
    Session { reason: String },
}

impl ServeError {
    /// The wire-level error code this maps to.
    pub fn code(&self) -> ErrorCode {
        match self {
            ServeError::Overloaded { .. } => ErrorCode::Overloaded,
            ServeError::NoSession { .. } => ErrorCode::NoSession,
            ServeError::BadRequest { .. } => ErrorCode::BadRequest,
            ServeError::Open { .. } => ErrorCode::Open,
            ServeError::Session { .. } => ErrorCode::Session,
        }
    }
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::Overloaded {
                tenant,
                inflight,
                bound,
            } => write!(
                f,
                "tenant {tenant} overloaded: {inflight} requests in flight, bound {bound}"
            ),
            ServeError::NoSession { tenant } => {
                write!(f, "tenant {tenant} has no open session")
            }
            ServeError::BadRequest { reason } => write!(f, "bad request: {reason}"),
            ServeError::Open { reason } => write!(f, "open failed: {reason}"),
            ServeError::Session { reason } => write!(f, "session: {reason}"),
        }
    }
}

impl std::error::Error for ServeError {}
