//! Wire format for the session service: length-prefixed binary frames over
//! a byte stream (a Unix socket in practice, a `Vec<u8>` in tests).
//!
//! ```text
//! frame := magic[4] | payload_len u32 LE | payload[payload_len] | crc32 u32 LE
//! ```
//!
//! The CRC (IEEE 802.3, shared with the `.rawz`/`.ifet` containers) covers
//! the whole payload — request id, tenant id, verb, and body alike — so any
//! single-byte corruption anywhere in a frame is detected *before* the
//! request is interpreted. That is what makes the fuzz guarantee hold:
//! a flipped byte can never silently retarget a request at another tenant's
//! session or mutate its parameters; it always surfaces as a typed
//! [`ProtocolError`].
//!
//! Payloads:
//!
//! ```text
//! request  := request_id u64 | tenant u32 | verb u8 | verb body
//! response := request_id u64 | tenant u32 | status u8 | status body
//! ```
//!
//! All integers are little-endian; `f32` travels as its IEEE bit pattern
//! (`to_bits`), so encode/decode is exactly lossless and responses are
//! byte-comparable across runs. Strings are `u32` length + UTF-8 bytes.

use ifet_volume::codec::crc32;

/// Magic prefix of request frames.
pub const MAGIC_REQUEST: [u8; 4] = *b"IFQ1";
/// Magic prefix of response frames.
pub const MAGIC_RESPONSE: [u8; 4] = *b"IFS1";
/// Hard cap on payload size: a corrupted length prefix must never drive an
/// allocation, so frames are rejected *before* the payload is read.
pub const MAX_PAYLOAD: u32 = 1 << 24;
/// Bytes of framing around a payload: magic + length prefix + trailing CRC.
pub const FRAME_OVERHEAD: usize = 4 + 4 + 4;
/// Protocol revision negotiated by [`Verb::Hello`]. v2 adds the pipelining
/// handshake; framing and every v1 verb encoding are unchanged, so v1
/// clients (which never send `Hello`) interoperate without translation.
pub const PROTOCOL_VERSION: u32 = 2;
/// Hard cap on the pipeline depth a `Hello` can negotiate: the per-connection
/// bound on decoded-but-unanswered requests the server will hold.
pub const MAX_PIPELINE: u32 = 64;

/// Why a byte buffer is not a valid protocol frame. Every corruption mode
/// the fuzz suite sweeps (flips, truncations, oversized prefixes, unknown
/// discriminants) lands on exactly one of these — never a panic.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ProtocolError {
    /// The buffer ends before the field being read.
    Truncated { need: usize, have: usize },
    /// The frame does not start with the expected magic.
    BadMagic { found: [u8; 4] },
    /// The length prefix exceeds [`MAX_PAYLOAD`].
    Oversized { len: u32, max: u32 },
    /// Payload bytes do not match the stored CRC.
    Checksum { stored: u32, computed: u32 },
    /// Bytes remain after the frame's declared end.
    TrailingBytes { extra: usize },
    /// Unknown verb discriminant in a request.
    UnknownVerb(u8),
    /// Unknown status discriminant in a response.
    UnknownStatus(u8),
    /// Unknown tracking-criterion discriminant.
    UnknownCriterion(u8),
    /// Unknown slice-axis discriminant.
    UnknownAxis(u8),
    /// Unknown error-code discriminant in an error response.
    UnknownErrorCode(u8),
    /// A string field is not valid UTF-8.
    BadUtf8,
}

impl std::fmt::Display for ProtocolError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ProtocolError::Truncated { need, have } => {
                write!(f, "truncated frame: need {need} bytes, have {have}")
            }
            ProtocolError::BadMagic { found } => write!(f, "bad frame magic {found:?}"),
            ProtocolError::Oversized { len, max } => {
                write!(f, "length prefix {len} exceeds cap {max}")
            }
            ProtocolError::Checksum { stored, computed } => {
                write!(
                    f,
                    "payload checksum mismatch: stored {stored:#010x}, computed {computed:#010x}"
                )
            }
            ProtocolError::TrailingBytes { extra } => {
                write!(f, "{extra} trailing bytes after frame end")
            }
            ProtocolError::UnknownVerb(v) => write!(f, "unknown verb {v}"),
            ProtocolError::UnknownStatus(s) => write!(f, "unknown response status {s}"),
            ProtocolError::UnknownCriterion(c) => write!(f, "unknown criterion kind {c}"),
            ProtocolError::UnknownAxis(a) => write!(f, "unknown slice axis {a}"),
            ProtocolError::UnknownErrorCode(c) => write!(f, "unknown error code {c}"),
            ProtocolError::BadUtf8 => write!(f, "string field is not valid UTF-8"),
        }
    }
}

impl std::error::Error for ProtocolError {}

/// Which axis a `render-slice` request cuts across.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Axis {
    X,
    Y,
    Z,
}

/// Tracking criterion carried on the wire — mirrors
/// `ifet_core::CriterionSpec` field-for-field.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum WireCriterion {
    FixedBand { lo: f32, hi: f32 },
    AdaptiveTf { tau: f32 },
    DataSpace { tau: f32 },
}

/// A request verb plus its arguments.
#[derive(Debug, Clone, PartialEq)]
pub enum Verb {
    /// Bind this tenant to the session persisted at `artifact`, with frame
    /// data in `data_dir`. Sessions are shared: two tenants opening the same
    /// artifact drive one resident `VisSession` and one paged series.
    Open { artifact: String, data_dir: String },
    /// Data-space extraction mask at `step`, certainty threshold `tau`.
    Classify { step: u32, tau: f32 },
    /// Run 4D region growing from `seeds` under `criterion`.
    Track {
        criterion: WireCriterion,
        seeds: Vec<(u32, u32, u32, u32)>,
    },
    /// Color-mapped axis slice of the frame at `step`; `adaptive` modulates
    /// it by the IATF-generated transfer function's opacity.
    RenderSlice {
        step: u32,
        axis: Axis,
        k: u32,
        adaptive: bool,
    },
    /// Per-tenant runtime counters (scheduling-dependent; see DESIGN §10).
    ReportStats,
    /// Release this tenant's session binding.
    Close,
    /// Pipelining handshake (protocol v2). The client asks for up to
    /// `max_pipeline` outstanding requests on this connection; the server
    /// answers [`ResponseBody::HelloOk`] with the granted depth (clamped to
    /// [`MAX_PIPELINE`]). A connection that never sends `Hello` runs in
    /// v1-compatible single-shot mode: one request, one reply, in order.
    Hello { max_pipeline: u32 },
}

impl Verb {
    /// Stable name for logs and counters.
    pub fn name(&self) -> &'static str {
        match self {
            Verb::Open { .. } => "open",
            Verb::Classify { .. } => "classify",
            Verb::Track { .. } => "track",
            Verb::RenderSlice { .. } => "render-slice",
            Verb::ReportStats => "report-stats",
            Verb::Close => "close",
            Verb::Hello { .. } => "hello",
        }
    }
}

/// One client request.
#[derive(Debug, Clone, PartialEq)]
pub struct Request {
    /// Client-chosen correlation id, echoed verbatim in the response.
    pub request_id: u64,
    /// Tenant the request acts for. Tenants are the unit of fairness
    /// accounting; they are created on first use.
    pub tenant: u32,
    pub verb: Verb,
}

/// Machine-readable failure class in an error response.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ErrorCode {
    /// The request frame itself was malformed.
    Protocol,
    /// The tenant exceeded its in-flight bound; retry later.
    Overloaded,
    /// The verb needs an open session and the tenant has none.
    NoSession,
    /// Arguments are structurally valid but unusable (bad step, bad seed…).
    BadRequest,
    /// The session rejected the operation (no classifier, paging I/O…).
    Session,
    /// Opening the artifact or its frame data failed.
    Open,
}

impl ErrorCode {
    fn to_u8(self) -> u8 {
        match self {
            ErrorCode::Protocol => 0,
            ErrorCode::Overloaded => 1,
            ErrorCode::NoSession => 2,
            ErrorCode::BadRequest => 3,
            ErrorCode::Session => 4,
            ErrorCode::Open => 5,
        }
    }

    fn from_u8(v: u8) -> Result<Self, ProtocolError> {
        Ok(match v {
            0 => ErrorCode::Protocol,
            1 => ErrorCode::Overloaded,
            2 => ErrorCode::NoSession,
            3 => ErrorCode::BadRequest,
            4 => ErrorCode::Session,
            5 => ErrorCode::Open,
            other => return Err(ProtocolError::UnknownErrorCode(other)),
        })
    }
}

/// Per-tenant service counters as reported by `report-stats`.
///
/// These are **runtime** observations (the serving analog of
/// `obs::counter_runtime`): `sent`/`accepted`/`rejected`/`completed` depend
/// on request interleaving, so equivalence schedules exclude this verb.
/// The admission invariant `accepted + rejected == sent` holds at any
/// quiescent point.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct StatsReport {
    pub sent: u64,
    pub accepted: u64,
    pub rejected: u64,
    pub completed: u64,
    /// Highest concurrent in-flight depth this tenant ever reached.
    pub max_depth: u64,
    /// Engine-wide: jobs that went through the cross-session batcher.
    pub batch_jobs: u64,
    /// Engine-wide: batch cycles (one queue drain each).
    pub batch_cycles: u64,
    /// Engine-wide: voxel rows pushed through the MLP by batched jobs.
    pub batch_rows: u64,
    /// Engine-wide: frames evicted from the shared cache budget.
    pub evictions: u64,
    /// Engine-wide: evictions by the quota-local phase (a tenant over its
    /// resident-byte quota reclaiming its own LRU frames).
    pub quota_evictions: u64,
    /// Engine-wide: evictions redirected from an active tenant's LRU frame
    /// to an idle tenant's frame.
    pub idle_evictions: u64,
}

/// A response body: one `Ok` variant per verb, or a typed error.
#[derive(Debug, Clone, PartialEq)]
pub enum ResponseBody {
    OpenOk {
        frames: u32,
        dims: (u32, u32, u32),
        first_step: u32,
        last_step: u32,
        has_iatf: bool,
        has_classifier: bool,
        tracks: u32,
    },
    ClassifyOk {
        /// Voxels at or above the certainty threshold.
        voxels: u64,
        /// The packed extraction mask (`Mask3` words, LSB-first).
        words: Vec<u64>,
    },
    TrackOk {
        voxels_per_frame: Vec<u32>,
        events: u32,
    },
    RenderSliceOk {
        width: u32,
        height: u32,
        /// Row-major RGB, 8 bits per channel (same quantization as PPM).
        rgb: Vec<u8>,
    },
    StatsOk(StatsReport),
    CloseOk,
    /// Handshake grant (protocol v2): the connection may now keep up to
    /// `max_pipeline` requests outstanding, with replies in completion order
    /// matched by request id.
    HelloOk {
        /// Server protocol revision ([`PROTOCOL_VERSION`]).
        version: u32,
        /// Granted pipeline depth (requested depth clamped to
        /// [`MAX_PIPELINE`], floored at 1).
        max_pipeline: u32,
    },
    Err {
        code: ErrorCode,
        message: String,
    },
}

/// One service response, correlated to its request by `(request_id, tenant)`.
#[derive(Debug, Clone, PartialEq)]
pub struct Response {
    pub request_id: u64,
    pub tenant: u32,
    pub body: ResponseBody,
}

// ---- encoding ----

struct Wr(Vec<u8>);

impl Wr {
    fn u8(&mut self, v: u8) {
        self.0.push(v);
    }
    fn u32(&mut self, v: u32) {
        self.0.extend_from_slice(&v.to_le_bytes());
    }
    fn u64(&mut self, v: u64) {
        self.0.extend_from_slice(&v.to_le_bytes());
    }
    fn f32(&mut self, v: f32) {
        self.u32(v.to_bits());
    }
    fn str(&mut self, s: &str) {
        self.u32(s.len() as u32);
        self.0.extend_from_slice(s.as_bytes());
    }
}

/// Wrap a payload in framing: magic, length prefix, trailing CRC.
pub fn encode_frame(magic: [u8; 4], payload: &[u8]) -> Vec<u8> {
    assert!(
        payload.len() as u64 <= MAX_PAYLOAD as u64,
        "payload exceeds MAX_PAYLOAD"
    );
    let mut out = Vec::with_capacity(payload.len() + FRAME_OVERHEAD);
    out.extend_from_slice(&magic);
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    out.extend_from_slice(payload);
    out.extend_from_slice(&crc32(payload).to_le_bytes());
    out
}

fn encode_request_payload(req: &Request) -> Vec<u8> {
    let mut w = Wr(Vec::new());
    w.u64(req.request_id);
    w.u32(req.tenant);
    match &req.verb {
        Verb::Open { artifact, data_dir } => {
            w.u8(0);
            w.str(artifact);
            w.str(data_dir);
        }
        Verb::Classify { step, tau } => {
            w.u8(1);
            w.u32(*step);
            w.f32(*tau);
        }
        Verb::Track { criterion, seeds } => {
            w.u8(2);
            match criterion {
                WireCriterion::FixedBand { lo, hi } => {
                    w.u8(0);
                    w.f32(*lo);
                    w.f32(*hi);
                }
                WireCriterion::AdaptiveTf { tau } => {
                    w.u8(1);
                    w.f32(*tau);
                }
                WireCriterion::DataSpace { tau } => {
                    w.u8(2);
                    w.f32(*tau);
                }
            }
            w.u32(seeds.len() as u32);
            for &(t, x, y, z) in seeds {
                w.u32(t);
                w.u32(x);
                w.u32(y);
                w.u32(z);
            }
        }
        Verb::RenderSlice {
            step,
            axis,
            k,
            adaptive,
        } => {
            w.u8(3);
            w.u32(*step);
            w.u8(match axis {
                Axis::X => 0,
                Axis::Y => 1,
                Axis::Z => 2,
            });
            w.u32(*k);
            w.u8(u8::from(*adaptive));
        }
        Verb::ReportStats => w.u8(4),
        Verb::Close => w.u8(5),
        Verb::Hello { max_pipeline } => {
            w.u8(6);
            w.u32(*max_pipeline);
        }
    }
    w.0
}

/// Encode a request as a complete wire frame.
pub fn encode_request(req: &Request) -> Vec<u8> {
    encode_frame(MAGIC_REQUEST, &encode_request_payload(req))
}

fn encode_response_payload(rsp: &Response) -> Vec<u8> {
    let mut w = Wr(Vec::new());
    w.u64(rsp.request_id);
    w.u32(rsp.tenant);
    match &rsp.body {
        ResponseBody::OpenOk {
            frames,
            dims,
            first_step,
            last_step,
            has_iatf,
            has_classifier,
            tracks,
        } => {
            w.u8(0);
            w.u32(*frames);
            w.u32(dims.0);
            w.u32(dims.1);
            w.u32(dims.2);
            w.u32(*first_step);
            w.u32(*last_step);
            w.u8(u8::from(*has_iatf) | (u8::from(*has_classifier) << 1));
            w.u32(*tracks);
        }
        ResponseBody::ClassifyOk { voxels, words } => {
            w.u8(1);
            w.u64(*voxels);
            w.u32(words.len() as u32);
            for &word in words {
                w.u64(word);
            }
        }
        ResponseBody::TrackOk {
            voxels_per_frame,
            events,
        } => {
            w.u8(2);
            w.u32(voxels_per_frame.len() as u32);
            for &v in voxels_per_frame {
                w.u32(v);
            }
            w.u32(*events);
        }
        ResponseBody::RenderSliceOk { width, height, rgb } => {
            w.u8(3);
            w.u32(*width);
            w.u32(*height);
            w.u32(rgb.len() as u32);
            w.0.extend_from_slice(rgb);
        }
        ResponseBody::StatsOk(s) => {
            w.u8(4);
            w.u64(s.sent);
            w.u64(s.accepted);
            w.u64(s.rejected);
            w.u64(s.completed);
            w.u64(s.max_depth);
            w.u64(s.batch_jobs);
            w.u64(s.batch_cycles);
            w.u64(s.batch_rows);
            w.u64(s.evictions);
            w.u64(s.quota_evictions);
            w.u64(s.idle_evictions);
        }
        ResponseBody::CloseOk => w.u8(5),
        ResponseBody::HelloOk {
            version,
            max_pipeline,
        } => {
            w.u8(6);
            w.u32(*version);
            w.u32(*max_pipeline);
        }
        ResponseBody::Err { code, message } => {
            w.u8(255);
            w.u8(code.to_u8());
            w.str(message);
        }
    }
    w.0
}

/// Encode a response as a complete wire frame.
pub fn encode_response(rsp: &Response) -> Vec<u8> {
    encode_frame(MAGIC_RESPONSE, &encode_response_payload(rsp))
}

// ---- decoding ----

struct Rd<'a> {
    b: &'a [u8],
    pos: usize,
}

impl<'a> Rd<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], ProtocolError> {
        let have = self.b.len() - self.pos;
        if have < n {
            return Err(ProtocolError::Truncated { need: n, have });
        }
        let s = &self.b[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }
    fn u8(&mut self) -> Result<u8, ProtocolError> {
        Ok(self.take(1)?[0])
    }
    fn u32(&mut self) -> Result<u32, ProtocolError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }
    fn u64(&mut self) -> Result<u64, ProtocolError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }
    fn f32(&mut self) -> Result<f32, ProtocolError> {
        Ok(f32::from_bits(self.u32()?))
    }
    fn str(&mut self) -> Result<String, ProtocolError> {
        let n = self.u32()? as usize;
        let bytes = self.take(n)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| ProtocolError::BadUtf8)
    }
    fn finish(self) -> Result<(), ProtocolError> {
        let extra = self.b.len() - self.pos;
        if extra != 0 {
            return Err(ProtocolError::TrailingBytes { extra });
        }
        Ok(())
    }
}

/// Validate framing (magic, length, CRC) and return the payload slice.
///
/// The length prefix is checked against [`MAX_PAYLOAD`] *before* the payload
/// is touched, so an oversized prefix can never drive an allocation or an
/// out-of-bounds read.
pub fn decode_frame(magic: [u8; 4], bytes: &[u8]) -> Result<&[u8], ProtocolError> {
    if bytes.len() < 8 {
        return Err(ProtocolError::Truncated {
            need: 8,
            have: bytes.len(),
        });
    }
    let found: [u8; 4] = bytes[0..4].try_into().unwrap();
    if found != magic {
        return Err(ProtocolError::BadMagic { found });
    }
    let len = u32::from_le_bytes(bytes[4..8].try_into().unwrap());
    if len > MAX_PAYLOAD {
        return Err(ProtocolError::Oversized {
            len,
            max: MAX_PAYLOAD,
        });
    }
    let total = 8 + len as usize + 4;
    if bytes.len() < total {
        return Err(ProtocolError::Truncated {
            need: total,
            have: bytes.len(),
        });
    }
    if bytes.len() > total {
        return Err(ProtocolError::TrailingBytes {
            extra: bytes.len() - total,
        });
    }
    let payload = &bytes[8..8 + len as usize];
    let stored = u32::from_le_bytes(bytes[total - 4..total].try_into().unwrap());
    let computed = crc32(payload);
    if stored != computed {
        return Err(ProtocolError::Checksum { stored, computed });
    }
    Ok(payload)
}

fn decode_request_payload(payload: &[u8]) -> Result<Request, ProtocolError> {
    let mut r = Rd { b: payload, pos: 0 };
    let request_id = r.u64()?;
    let tenant = r.u32()?;
    let verb = match r.u8()? {
        0 => Verb::Open {
            artifact: r.str()?,
            data_dir: r.str()?,
        },
        1 => Verb::Classify {
            step: r.u32()?,
            tau: r.f32()?,
        },
        2 => {
            let criterion = match r.u8()? {
                0 => WireCriterion::FixedBand {
                    lo: r.f32()?,
                    hi: r.f32()?,
                },
                1 => WireCriterion::AdaptiveTf { tau: r.f32()? },
                2 => WireCriterion::DataSpace { tau: r.f32()? },
                other => return Err(ProtocolError::UnknownCriterion(other)),
            };
            let n = r.u32()? as usize;
            let mut seeds = Vec::new();
            for _ in 0..n {
                seeds.push((r.u32()?, r.u32()?, r.u32()?, r.u32()?));
            }
            Verb::Track { criterion, seeds }
        }
        3 => Verb::RenderSlice {
            step: r.u32()?,
            axis: match r.u8()? {
                0 => Axis::X,
                1 => Axis::Y,
                2 => Axis::Z,
                other => return Err(ProtocolError::UnknownAxis(other)),
            },
            k: r.u32()?,
            adaptive: r.u8()? != 0,
        },
        4 => Verb::ReportStats,
        5 => Verb::Close,
        6 => Verb::Hello {
            max_pipeline: r.u32()?,
        },
        other => return Err(ProtocolError::UnknownVerb(other)),
    };
    r.finish()?;
    Ok(Request {
        request_id,
        tenant,
        verb,
    })
}

/// Decode a complete request frame.
pub fn decode_request(bytes: &[u8]) -> Result<Request, ProtocolError> {
    decode_request_payload(decode_frame(MAGIC_REQUEST, bytes)?)
}

fn decode_response_payload(payload: &[u8]) -> Result<Response, ProtocolError> {
    let mut r = Rd { b: payload, pos: 0 };
    let request_id = r.u64()?;
    let tenant = r.u32()?;
    let body = match r.u8()? {
        0 => {
            let frames = r.u32()?;
            let dims = (r.u32()?, r.u32()?, r.u32()?);
            let first_step = r.u32()?;
            let last_step = r.u32()?;
            let flags = r.u8()?;
            ResponseBody::OpenOk {
                frames,
                dims,
                first_step,
                last_step,
                has_iatf: flags & 1 != 0,
                has_classifier: flags & 2 != 0,
                tracks: r.u32()?,
            }
        }
        1 => {
            let voxels = r.u64()?;
            let n = r.u32()? as usize;
            let mut words = Vec::new();
            for _ in 0..n {
                words.push(r.u64()?);
            }
            ResponseBody::ClassifyOk { voxels, words }
        }
        2 => {
            let n = r.u32()? as usize;
            let mut voxels_per_frame = Vec::new();
            for _ in 0..n {
                voxels_per_frame.push(r.u32()?);
            }
            ResponseBody::TrackOk {
                voxels_per_frame,
                events: r.u32()?,
            }
        }
        3 => {
            let width = r.u32()?;
            let height = r.u32()?;
            let n = r.u32()? as usize;
            ResponseBody::RenderSliceOk {
                width,
                height,
                rgb: r.take(n)?.to_vec(),
            }
        }
        4 => ResponseBody::StatsOk(StatsReport {
            sent: r.u64()?,
            accepted: r.u64()?,
            rejected: r.u64()?,
            completed: r.u64()?,
            max_depth: r.u64()?,
            batch_jobs: r.u64()?,
            batch_cycles: r.u64()?,
            batch_rows: r.u64()?,
            evictions: r.u64()?,
            quota_evictions: r.u64()?,
            idle_evictions: r.u64()?,
        }),
        5 => ResponseBody::CloseOk,
        6 => ResponseBody::HelloOk {
            version: r.u32()?,
            max_pipeline: r.u32()?,
        },
        255 => ResponseBody::Err {
            code: ErrorCode::from_u8(r.u8()?)?,
            message: r.str()?,
        },
        other => return Err(ProtocolError::UnknownStatus(other)),
    };
    r.finish()?;
    Ok(Response {
        request_id,
        tenant,
        body,
    })
}

/// Decode a complete response frame.
pub fn decode_response(bytes: &[u8]) -> Result<Response, ProtocolError> {
    decode_response_payload(decode_frame(MAGIC_RESPONSE, bytes)?)
}

/// Read one frame's raw bytes from a stream: header first (validating magic
/// and length before any payload allocation), then payload + CRC. Returns
/// `Ok(None)` on clean EOF at a frame boundary. CRC/semantic validation is
/// left to `decode_request`/`decode_response` on the returned bytes.
pub fn read_frame_bytes(
    r: &mut dyn std::io::Read,
    magic: [u8; 4],
) -> std::io::Result<Option<Result<Vec<u8>, ProtocolError>>> {
    let mut header = [0u8; 8];
    let mut got = 0;
    while got < header.len() {
        match r.read(&mut header[got..])? {
            0 if got == 0 => return Ok(None),
            0 => return Ok(Some(Err(ProtocolError::Truncated { need: 8, have: got }))),
            n => got += n,
        }
    }
    let found: [u8; 4] = header[0..4].try_into().unwrap();
    if found != magic {
        return Ok(Some(Err(ProtocolError::BadMagic { found })));
    }
    let len = u32::from_le_bytes(header[4..8].try_into().unwrap());
    if len > MAX_PAYLOAD {
        return Ok(Some(Err(ProtocolError::Oversized {
            len,
            max: MAX_PAYLOAD,
        })));
    }
    let rest = len as usize + 4;
    let mut frame = Vec::with_capacity(8 + rest);
    frame.extend_from_slice(&header);
    frame.resize(8 + rest, 0);
    let mut got = 0;
    while got < rest {
        match r.read(&mut frame[8 + got..])? {
            0 => {
                return Ok(Some(Err(ProtocolError::Truncated {
                    need: 8 + rest,
                    have: 8 + got,
                })))
            }
            n => got += n,
        }
    }
    Ok(Some(Ok(frame)))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_requests() -> Vec<Request> {
        vec![
            Request {
                request_id: 7,
                tenant: 1,
                verb: Verb::Open {
                    artifact: "a.ifet".into(),
                    data_dir: "/tmp/frames".into(),
                },
            },
            Request {
                request_id: 8,
                tenant: 2,
                verb: Verb::Classify { step: 3, tau: 0.5 },
            },
            Request {
                request_id: 9,
                tenant: 1,
                verb: Verb::Track {
                    criterion: WireCriterion::FixedBand { lo: 0.9, hi: 3.0 },
                    seeds: vec![(0, 3, 6, 6), (1, 4, 6, 6)],
                },
            },
            Request {
                request_id: 10,
                tenant: 3,
                verb: Verb::RenderSlice {
                    step: 2,
                    axis: Axis::Z,
                    k: 6,
                    adaptive: true,
                },
            },
            Request {
                request_id: 11,
                tenant: 3,
                verb: Verb::ReportStats,
            },
            Request {
                request_id: 12,
                tenant: 3,
                verb: Verb::Close,
            },
            Request {
                request_id: 13,
                tenant: 0,
                verb: Verb::Hello { max_pipeline: 8 },
            },
        ]
    }

    #[test]
    fn request_round_trips() {
        for req in sample_requests() {
            let wire = encode_request(&req);
            assert_eq!(decode_request(&wire).unwrap(), req);
        }
    }

    #[test]
    fn response_round_trips() {
        let bodies = vec![
            ResponseBody::OpenOk {
                frames: 16,
                dims: (12, 12, 12),
                first_step: 0,
                last_step: 15,
                has_iatf: true,
                has_classifier: false,
                tracks: 2,
            },
            ResponseBody::ClassifyOk {
                voxels: 42,
                words: vec![0xdead_beef, 0, u64::MAX],
            },
            ResponseBody::TrackOk {
                voxels_per_frame: vec![5, 9, 0],
                events: 3,
            },
            ResponseBody::RenderSliceOk {
                width: 2,
                height: 2,
                rgb: vec![0, 128, 255, 1, 2, 3, 4, 5, 6, 7, 8, 9],
            },
            ResponseBody::StatsOk(StatsReport {
                sent: 10,
                accepted: 8,
                rejected: 2,
                completed: 8,
                max_depth: 4,
                batch_jobs: 6,
                batch_cycles: 3,
                batch_rows: 10_368,
                evictions: 5,
                quota_evictions: 2,
                idle_evictions: 1,
            }),
            ResponseBody::CloseOk,
            ResponseBody::HelloOk {
                version: PROTOCOL_VERSION,
                max_pipeline: 8,
            },
            ResponseBody::Err {
                code: ErrorCode::Overloaded,
                message: "tenant 3 at in-flight bound 4".into(),
            },
        ];
        for body in bodies {
            let rsp = Response {
                request_id: 99,
                tenant: 3,
                body,
            };
            let wire = encode_response(&rsp);
            assert_eq!(decode_response(&wire).unwrap(), rsp);
        }
    }

    #[test]
    fn oversized_prefix_rejected_before_allocation() {
        let req = sample_requests().remove(0);
        let mut wire = encode_request(&req);
        wire[4..8].copy_from_slice(&u32::MAX.to_le_bytes());
        assert!(matches!(
            decode_request(&wire),
            Err(ProtocolError::Oversized { len: u32::MAX, .. })
        ));
    }

    #[test]
    fn stream_reader_matches_buffer_decoder() {
        let reqs = sample_requests();
        let mut stream = Vec::new();
        for r in &reqs {
            stream.extend_from_slice(&encode_request(r));
        }
        let mut cursor = std::io::Cursor::new(stream);
        for expect in &reqs {
            let frame = read_frame_bytes(&mut cursor, MAGIC_REQUEST)
                .unwrap()
                .expect("frame present")
                .expect("frame valid");
            assert_eq!(&decode_request(&frame).unwrap(), expect);
        }
        assert!(read_frame_bytes(&mut cursor, MAGIC_REQUEST)
            .unwrap()
            .is_none());
    }
}
