//! # ifet-serve — the multi-tenant session service
//!
//! The paper's workflow is interactive: analysts paint, classify, track,
//! and render against evolving 4D series. This crate turns the one-shot
//! pipeline into a resident service (the ROADMAP's "millions of users"
//! direction): many [`VisSession`](ifet_core::VisSession)s stay loaded
//! concurrently, addressed by `.ifet` artifact path, with every tenant's
//! frame data paged through one shared
//! [`CacheBudgetHandle`](ifet_volume::CacheBudgetHandle).
//!
//! Three layers:
//!
//! - [`protocol`] — the length-prefixed, CRC-guarded binary wire format
//!   (verbs: `open`, `classify`, `track`, `render-slice`, `report-stats`,
//!   `close`, and the pipelining `hello` handshake), with typed
//!   [`ProtocolError`]s for every corruption mode.
//! - [`engine`] — [`ServeEngine`]: session residency and sharing,
//!   per-tenant admission (bounded in-flight work, typed `Overloaded`
//!   backpressure), per-artifact residency-quota groups on the shared
//!   cache budget, and the cross-session MLP batcher.
//! - [`server`] — the Unix-socket transport (`ifet serve` / `ifet
//!   client`): per-connection reader/writer threads around a fixed
//!   worker-pool executor, multiplexed pipelined connections (replies in
//!   completion order, matched by request id), and a multiplexing
//!   [`Client`](server::Client). The deterministic test harness drives
//!   [`ServeEngine::handle_wire`] in-process instead.
//!
//! The load-bearing contract, pinned by `tests/serve_equivalence.rs`:
//! **responses are schedule-independent** — a concurrent multi-client run
//! produces byte-identical per-client responses to a serial replay of the
//! same request log, because every verb (except the explicitly
//! runtime-valued `report-stats`) computes only from artifact bytes and
//! request arguments through code already pinned bit-identical against
//! paging, batching, and thread count.

pub mod batch;
pub mod engine;
pub mod error;
pub mod protocol;
#[cfg(unix)]
pub mod server;

pub use engine::{ServeConfig, ServeEngine, SharedSession};
pub use error::ServeError;
pub use protocol::{
    decode_request, decode_response, encode_request, encode_response, Axis, ErrorCode,
    ProtocolError, Request, Response, ResponseBody, StatsReport, Verb, WireCriterion, MAX_PIPELINE,
    PROTOCOL_VERSION,
};
#[cfg(unix)]
pub use server::{serve_unix, Client, ClientError, ServerOpts};
