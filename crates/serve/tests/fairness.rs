//! Fairness and backpressure, deterministically: a greedy tenant saturates
//! its in-flight bound while its frame reads are *held at a gate* (a
//! blocking fault hook the test controls), so there is no timing guesswork
//! — the engine's state is pinned exactly when the assertions run.
//!
//! Contract under a starved byte budget:
//! - the greedy tenant gets its bounded amount of in-flight work, then an
//!   immediate typed `Overloaded` for everything beyond it — rejected at
//!   admission, never queued;
//! - a light tenant on another artifact keeps completing the whole time;
//! - the counter algebra holds for both: `accepted + rejected == sent`.

use ifet_serve::{
    Axis, ErrorCode, Request, ResponseBody, ServeConfig, ServeEngine, Verb, WireCriterion,
};
use ifet_volume::{CacheBudget, ReadFaultHook};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

#[path = "../../../tests/support/mod.rs"]
mod support;
use support::{serve_fixture, ServeFixture, FRAME_BYTES, STEP_STRIDE};

const BOUND: usize = 2;
const EXTRA: u64 = 6;

struct Gate {
    open: Mutex<bool>,
    cv: Condvar,
    arrivals: AtomicU64,
}

impl Gate {
    fn new() -> Arc<Self> {
        Arc::new(Self {
            open: Mutex::new(false),
            cv: Condvar::new(),
            arrivals: AtomicU64::new(0),
        })
    }

    /// A fault hook that blocks every read of the hooked artifact until
    /// [`Gate::release`] — the test's handle on "work is in flight *now*".
    fn hook(self: &Arc<Self>) -> ReadFaultHook {
        let gate = Arc::clone(self);
        Arc::new(move |_frame, _attempt| {
            gate.arrivals.fetch_add(1, Ordering::SeqCst);
            let mut open = gate.open.lock().unwrap();
            while !*open {
                open = gate.cv.wait(open).unwrap();
            }
            None
        })
    }

    fn release(&self) {
        *self.open.lock().unwrap() = true;
        self.cv.notify_all();
    }
}

fn open_req(id: u64, tenant: u32, fx: &ServeFixture) -> Request {
    Request {
        request_id: id,
        tenant,
        verb: Verb::Open {
            artifact: fx.artifact.display().to_string(),
            data_dir: fx.data_dir.display().to_string(),
        },
    }
}

fn track_req(id: u64, tenant: u32) -> Request {
    Request {
        request_id: id,
        tenant,
        verb: Verb::Track {
            criterion: WireCriterion::FixedBand { lo: 0.9, hi: 3.0 },
            seeds: vec![(0, 3, 6, 6)],
        },
    }
}

/// Poll tenant counters until `pred` holds (bounded; the gate guarantees
/// the state can't regress once reached).
fn wait_until(engine: &ServeEngine, tenant: u32, pred: impl Fn(u64, u64) -> bool) {
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        let st = engine.tenant_stats(tenant);
        if pred(st.accepted, st.completed) {
            return;
        }
        assert!(
            Instant::now() < deadline,
            "timed out waiting for tenant {tenant} counters: {st:?}"
        );
        std::thread::sleep(Duration::from_millis(2));
    }
}

#[test]
fn greedy_tenant_is_bounded_while_light_tenant_completes() {
    let fx_greedy = serve_fixture("fair_greedy", 0.0);
    let fx_light = serve_fixture("fair_light", 0.25);
    let gate = Gate::new();

    // Starved shared budget: two frames' worth of bytes for everyone. The
    // greedy tenant's gated read holds part of it in flight the whole time,
    // so the light tenant pages its single-frame verbs through what's left.
    let engine = ServeEngine::new(ServeConfig {
        budget: CacheBudget::Bytes(2 * FRAME_BYTES),
        max_inflight_per_tenant: BOUND,
        prefetch: 0,
        tenant_quota_bytes: None,
    });
    let greedy_key = fx_greedy.artifact.display().to_string();
    engine.set_read_fault_hook(&greedy_key, Some(gate.hook()));

    // Greedy opens (metadata only — no frame reads, so no gate).
    match engine.handle(open_req(1, 0, &fx_greedy)).body {
        ResponseBody::OpenOk { .. } => {}
        other => panic!("greedy open failed: {other:?}"),
    }

    std::thread::scope(|s| {
        // Fill the greedy tenant's bound with tracks that stop at the gate
        // on their first frame read.
        let blocked: Vec<_> = (0..BOUND as u64)
            .map(|i| {
                let engine = engine.clone();
                s.spawn(move || engine.handle(track_req(10 + i, 0)))
            })
            .collect();
        // Both are in flight once accepted == 1 open + BOUND tracks with
        // only the open completed; admission counts them before execution,
        // so from here every further greedy request sees a full lane.
        wait_until(&engine, 0, |accepted, completed| {
            accepted == 1 + BOUND as u64 && completed == 1
        });

        // The greedy burst beyond the bound: rejected immediately and
        // typed, while the lane is still blocked — never queued behind it.
        for i in 0..EXTRA {
            let rsp = engine.handle(track_req(100 + i, 0));
            match rsp.body {
                ResponseBody::Err { code, message } => {
                    assert_eq!(code, ErrorCode::Overloaded, "burst {i}: {message}");
                }
                other => panic!("burst {i} was not rejected: {other:?}"),
            }
        }
        let st = engine.tenant_stats(0);
        assert_eq!(st.rejected, EXTRA);
        assert_eq!(st.accepted, 1 + BOUND as u64);
        assert_eq!(st.accepted + st.rejected, st.sent);
        assert_eq!(st.completed, 1, "rejections must not wait on the lane");

        // The light tenant's whole session completes while the greedy lane
        // is wedged: opens, classifies, renders, closes — zero rejections.
        let light = [
            open_req(50, 1, &fx_light),
            Request {
                request_id: 51,
                tenant: 1,
                verb: Verb::Classify {
                    step: 3 * STEP_STRIDE,
                    tau: 0.5,
                },
            },
            Request {
                request_id: 52,
                tenant: 1,
                verb: Verb::RenderSlice {
                    step: STEP_STRIDE,
                    axis: Axis::Z,
                    k: 6,
                    adaptive: false,
                },
            },
            Request {
                request_id: 53,
                tenant: 1,
                verb: Verb::Close,
            },
        ];
        for req in light {
            let id = req.request_id;
            if let ResponseBody::Err { code, message } = engine.handle(req).body {
                panic!("light request {id} failed: {code:?} {message}")
            }
        }
        let lt = engine.tenant_stats(1);
        assert_eq!(lt.rejected, 0, "light tenant must never be rejected");
        assert_eq!(lt.accepted, 4);
        assert_eq!(lt.completed, 4);
        assert_eq!(lt.accepted + lt.rejected, lt.sent);

        // Open the gate: the blocked tracks finish as real answers — the
        // bound delayed them, it never corrupted them.
        gate.release();
        for h in blocked {
            match h.join().unwrap().body {
                ResponseBody::TrackOk {
                    voxels_per_frame, ..
                } => assert!(voxels_per_frame[0] > 0),
                other => panic!("gated track failed after release: {other:?}"),
            }
        }
    });

    let st = engine.tenant_stats(0);
    assert_eq!(st.sent, 1 + BOUND as u64 + EXTRA);
    assert_eq!(st.accepted, 1 + BOUND as u64);
    assert_eq!(st.rejected, EXTRA);
    assert_eq!(
        st.completed, st.accepted,
        "every accepted request completed"
    );
    assert_eq!(st.accepted + st.rejected, st.sent);
    assert!(
        st.max_depth as usize > BOUND,
        "the burst must have probed past the bound"
    );
    assert!(
        gate.arrivals.load(Ordering::SeqCst) > 0,
        "gated reads must actually have hit the gate"
    );
}

#[test]
fn tenant_quota_evicts_own_frames_and_leaves_neighbours_resident() {
    // Residency fairness: under a roomy *global* budget, a tenant that
    // pages past its own `--tenant-quota-bytes` must reclaim its OWN
    // least-recent frames — the neighbour's working set stays resident and
    // untouched. Both bounds (global high-water AND per-tenant quota) must
    // hold simultaneously.
    let fx_a = serve_fixture("fair_quota_a", 0.0);
    let fx_b = serve_fixture("fair_quota_b", 0.25);
    let engine = ServeEngine::new(ServeConfig {
        budget: CacheBudget::Frames(8),
        max_inflight_per_tenant: 4,
        prefetch: 0,
        tenant_quota_bytes: Some(2 * FRAME_BYTES),
    });
    assert!(matches!(
        engine.handle(open_req(1, 0, &fx_a)).body,
        ResponseBody::OpenOk { .. }
    ));
    assert!(matches!(
        engine.handle(open_req(2, 1, &fx_b)).body,
        ResponseBody::OpenOk { .. }
    ));

    let classify = |id: u64, tenant: u32, frame: u32| Request {
        request_id: id,
        tenant,
        verb: Verb::Classify {
            step: frame * STEP_STRIDE,
            tau: 0.5,
        },
    };
    // The neighbour fills its quota first: two frames resident.
    for frame in 0..2 {
        match engine
            .handle(classify(10 + u64::from(frame), 1, frame))
            .body
        {
            ResponseBody::ClassifyOk { .. } => {}
            other => panic!("neighbour classify failed: {other:?}"),
        }
    }
    // The paging tenant walks four distinct frames through a two-frame
    // quota: frames 0 and 1 must be evicted — by the quota-local phase,
    // from its own set — even though the global budget (8 frames) still
    // has room for all six.
    for frame in 0..4 {
        match engine
            .handle(classify(20 + u64::from(frame), 0, frame))
            .body
        {
            ResponseBody::ClassifyOk { .. } => {}
            other => panic!("paging classify failed: {other:?}"),
        }
    }

    let key_a = fx_a.artifact.display().to_string();
    let key_b = fx_b.artifact.display().to_string();
    let shared_a = engine.resident(&key_a).expect("a stays resident");
    let shared_b = engine.resident(&key_b).expect("b stays resident");
    let ga = engine.budget().group_stats(shared_a.residency_group());
    let gb = engine.budget().group_stats(shared_b.residency_group());

    // Per-tenant bound: the paging tenant never exceeded its quota and
    // paid exactly the overflow in quota-local evictions.
    assert!(
        ga.high_water_bytes <= 2 * FRAME_BYTES,
        "tenant quota breached: high-water {} > {}",
        ga.high_water_bytes,
        2 * FRAME_BYTES
    );
    assert_eq!(ga.resident_bytes, 2 * FRAME_BYTES);
    assert_eq!(ga.quota_evictions, 2, "4 frames through a 2-frame quota");

    // The neighbour was untouched: still at quota, zero evictions — both
    // in its group account and on its own series.
    assert_eq!(gb.resident_bytes, 2 * FRAME_BYTES);
    assert_eq!(gb.quota_evictions, 0);
    assert_eq!(
        shared_b.series().stats().evictions,
        0,
        "quota pressure on tenant 0 must never evict tenant 1's frames"
    );

    // Global bound holds at the same time, and every eviction was
    // quota-local — the global budget never had to act.
    let st = engine.budget().stats();
    assert!(st.high_water_frames <= 8);
    assert_eq!(st.evictions, 2);
    assert_eq!(st.quota_evictions, 2);
    assert_eq!(st.idle_evictions, 0);

    // The counters surface over the wire too (`report-stats`).
    match engine
        .handle(Request {
            request_id: 90,
            tenant: 0,
            verb: Verb::ReportStats,
        })
        .body
    {
        ResponseBody::StatsOk(report) => {
            assert_eq!(report.evictions, 2);
            assert_eq!(report.quota_evictions, 2);
            assert_eq!(report.idle_evictions, 0);
        }
        other => panic!("report-stats failed: {other:?}"),
    }
}

#[test]
fn rejection_is_per_tenant_not_global() {
    // Two tenants over the *same* artifact: one wedged at its bound must
    // not consume the other's admission lane — the bound is per-tenant even
    // when the resident session is shared.
    let fx = serve_fixture("fair_shared", 0.0);
    let gate = Gate::new();
    let engine = ServeEngine::new(ServeConfig {
        budget: CacheBudget::Frames(4),
        max_inflight_per_tenant: 1,
        prefetch: 0,
        tenant_quota_bytes: None,
    });
    let key = fx.artifact.display().to_string();
    engine.set_read_fault_hook(&key, Some(gate.hook()));
    assert!(matches!(
        engine.handle(open_req(1, 0, &fx)).body,
        ResponseBody::OpenOk { .. }
    ));
    assert!(matches!(
        engine.handle(open_req(2, 1, &fx)).body,
        ResponseBody::OpenOk { .. }
    ));

    std::thread::scope(|s| {
        let blocked = {
            let engine = engine.clone();
            s.spawn(move || engine.handle(track_req(10, 0)))
        };
        wait_until(&engine, 0, |accepted, completed| {
            accepted == 2 && completed == 1
        });
        // Tenant 0 is full; its next request bounces.
        assert!(matches!(
            engine.handle(track_req(11, 0)).body,
            ResponseBody::Err {
                code: ErrorCode::Overloaded,
                ..
            }
        ));
        // Tenant 1 still has its own lane — its request is *accepted* and
        // merely waits at the gate like any real reader would.
        let other = {
            let engine = engine.clone();
            s.spawn(move || engine.handle(track_req(12, 1)))
        };
        wait_until(&engine, 1, |accepted, completed| {
            accepted == 2 && completed == 1
        });
        assert_eq!(engine.tenant_stats(1).rejected, 0);

        gate.release();
        assert!(matches!(
            blocked.join().unwrap().body,
            ResponseBody::TrackOk { .. }
        ));
        assert!(matches!(
            other.join().unwrap().body,
            ResponseBody::TrackOk { .. }
        ));
    });
}
