//! Protocol corruption and fuzz suite: the wire codec must be *total*.
//! Whatever bytes arrive — flipped, truncated, oversized, re-checksummed
//! with hostile discriminants, or outright garbage — decoding returns a
//! typed [`ProtocolError`] or a valid message. It never panics, never
//! allocates against a hostile length prefix, and a corrupted request can
//! never be attributed to a session (the engine answers `request_id 0,
//! tenant 0, Protocol` because the CRC covers the whole payload, ids
//! included).

use ifet_serve::protocol::{
    decode_request, decode_response, encode_request, encode_response, read_frame_bytes,
    ProtocolError, FRAME_OVERHEAD, MAGIC_REQUEST, MAGIC_RESPONSE, MAX_PAYLOAD,
};
use ifet_serve::{
    Axis, ErrorCode, Request, Response, ResponseBody, ServeConfig, ServeEngine, StatsReport, Verb,
    WireCriterion,
};
use ifet_volume::codec::crc32;
use std::io::Cursor;

#[path = "../../../tests/support/mod.rs"]
mod support;
use support::mix;

/// Offset of the verb discriminant inside a request payload:
/// `request_id: u64` + `tenant: u32`.
const VERB_TAG_OFFSET: usize = 12;

/// One representative request per verb (strings, floats, vectors, bools —
/// every field shape the codec knows).
fn sample_requests() -> Vec<Request> {
    let verbs = vec![
        Verb::Open {
            artifact: "/data/run7/session.ifet".into(),
            data_dir: "/data/run7".into(),
        },
        Verb::Classify {
            step: 35,
            tau: 0.65,
        },
        Verb::Track {
            criterion: WireCriterion::FixedBand { lo: 0.9, hi: 3.0 },
            seeds: vec![(0, 3, 6, 6), (5, 7, 6, 6)],
        },
        Verb::Track {
            criterion: WireCriterion::AdaptiveTf { tau: 0.4 },
            seeds: vec![(2, 1, 2, 3)],
        },
        Verb::RenderSlice {
            step: 10,
            axis: Axis::Y,
            k: 6,
            adaptive: true,
        },
        Verb::ReportStats,
        Verb::Close,
        Verb::Hello { max_pipeline: 8 },
    ];
    verbs
        .into_iter()
        .enumerate()
        .map(|(i, verb)| Request {
            request_id: 0xABCD_0000 + i as u64,
            tenant: 42 + i as u32,
            verb,
        })
        .collect()
}

/// One representative response per body variant.
fn sample_responses() -> Vec<Response> {
    let bodies = vec![
        ResponseBody::OpenOk {
            frames: 16,
            dims: (12, 12, 12),
            first_step: 0,
            last_step: 75,
            has_iatf: true,
            has_classifier: false,
            tracks: 3,
        },
        ResponseBody::ClassifyOk {
            voxels: 123,
            words: vec![0xDEAD_BEEF, 0, u64::MAX],
        },
        ResponseBody::TrackOk {
            voxels_per_frame: vec![10, 20, 0, 5],
            events: 2,
        },
        ResponseBody::RenderSliceOk {
            width: 3,
            height: 2,
            rgb: vec![
                0, 128, 255, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15,
            ],
        },
        ResponseBody::StatsOk(StatsReport {
            sent: 9,
            accepted: 7,
            rejected: 2,
            completed: 7,
            max_depth: 3,
            batch_jobs: 5,
            batch_cycles: 2,
            batch_rows: 1728,
            evictions: 6,
            quota_evictions: 4,
            idle_evictions: 1,
        }),
        ResponseBody::HelloOk {
            version: 2,
            max_pipeline: 64,
        },
        ResponseBody::CloseOk,
        ResponseBody::Err {
            code: ErrorCode::Overloaded,
            message: "tenant 42 over bound".into(),
        },
    ];
    bodies
        .into_iter()
        .enumerate()
        .map(|(i, body)| Response {
            request_id: 0x1000 + i as u64,
            tenant: 9,
            body,
        })
        .collect()
}

#[test]
fn pristine_frames_round_trip() {
    for req in sample_requests() {
        let frame = encode_request(&req);
        assert_eq!(decode_request(&frame).unwrap(), req);
    }
    for rsp in sample_responses() {
        let frame = encode_response(&rsp);
        assert_eq!(decode_response(&frame).unwrap(), rsp);
    }
}

#[test]
fn every_single_byte_flip_is_a_typed_error() {
    // CRC-32 detects every single-byte error, and the header fields are
    // validated directly — so *no* flip anywhere in the frame may survive
    // as an Ok decode, under any of three flip patterns.
    for req in sample_requests() {
        let frame = encode_request(&req);
        for i in 0..frame.len() {
            for mask in [0x01u8, 0x80, 0xFF] {
                let mut bad = frame.clone();
                bad[i] ^= mask;
                assert!(
                    decode_request(&bad).is_err(),
                    "flip {mask:#04x} at byte {i} of {:?} decoded Ok",
                    req.verb
                );
            }
        }
    }
    for rsp in sample_responses() {
        let frame = encode_response(&rsp);
        for i in 0..frame.len() {
            let mut bad = frame.clone();
            bad[i] ^= 0xFF;
            assert!(
                decode_response(&bad).is_err(),
                "response flip at byte {i} decoded Ok"
            );
        }
    }
}

#[test]
fn every_truncation_is_a_typed_error() {
    for req in sample_requests() {
        let frame = encode_request(&req);
        for n in 0..frame.len() {
            match decode_request(&frame[..n]) {
                Err(ProtocolError::Truncated { .. }) => {}
                Err(e) => panic!("prefix {n}: expected Truncated, got {e:?}"),
                Ok(_) => panic!("prefix {n} of {} decoded Ok", frame.len()),
            }
        }
        // ...and one byte *extra* is trailing garbage, not a frame.
        let mut long = frame.clone();
        long.push(0);
        assert!(matches!(
            decode_request(&long),
            Err(ProtocolError::TrailingBytes { extra: 1 })
        ));
    }
}

#[test]
fn oversized_length_prefixes_are_rejected_without_allocation() {
    for len in [MAX_PAYLOAD + 1, u32::MAX, u32::MAX - 7] {
        let mut frame = Vec::new();
        frame.extend_from_slice(&MAGIC_REQUEST);
        frame.extend_from_slice(&len.to_le_bytes());
        frame.extend_from_slice(&[0u8; 64]);
        match decode_request(&frame) {
            Err(ProtocolError::Oversized { len: l, max }) => {
                assert_eq!(l, len);
                assert_eq!(max, MAX_PAYLOAD);
            }
            other => panic!("length {len}: expected Oversized, got {other:?}"),
        }
    }
    // An honest length with a hostile magic is caught first.
    let mut frame = vec![0x00, 0x11, 0x22, 0x33];
    frame.extend_from_slice(&4u32.to_le_bytes());
    frame.extend_from_slice(&[0u8; 8]);
    assert!(matches!(
        decode_request(&frame),
        Err(ProtocolError::BadMagic { .. })
    ));
}

/// The engine's reply to an oversized length prefix, pinned byte for byte.
/// The message must echo the *offending declared length* (so a client
/// operator can see what the peer claimed), the reply is unattributed
/// (request id 0 / tenant 0), and the encoding is frozen: any accidental
/// change to the error text, the status discriminant, or the framing shows
/// up here as a literal byte diff.
#[test]
fn oversized_reply_bytes_are_pinned_and_echo_the_declared_length() {
    let mut frame = Vec::new();
    frame.extend_from_slice(&MAGIC_REQUEST);
    frame.extend_from_slice(&(MAX_PAYLOAD + 1).to_le_bytes());
    frame.extend_from_slice(&[0u8; 16]);
    let engine = ServeEngine::new(ServeConfig::default());
    let reply = engine.handle_wire(&frame);

    #[rustfmt::skip]
    const PINNED: [u8; 73] = [
        // "IFS1" | payload_len 61 LE
        0x49, 0x46, 0x53, 0x31, 0x3D, 0x00, 0x00, 0x00,
        // request_id 0 | tenant 0 | status Err (255) | code Protocol (0)
        0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0xFF, 0x00,
        // message len 43 LE | "length prefix 16777217 exceeds cap 16777216"
        0x2B, 0x00, 0x00, 0x00,
        0x6C, 0x65, 0x6E, 0x67, 0x74, 0x68, 0x20, 0x70, 0x72, 0x65, 0x66, 0x69, 0x78, 0x20,
        0x31, 0x36, 0x37, 0x37, 0x37, 0x32, 0x31, 0x37, 0x20,
        0x65, 0x78, 0x63, 0x65, 0x65, 0x64, 0x73, 0x20, 0x63, 0x61, 0x70, 0x20,
        0x31, 0x36, 0x37, 0x37, 0x37, 0x32, 0x31, 0x36,
        // crc32 over the payload
        0xF2, 0xE9, 0xE2, 0x50,
    ];
    assert_eq!(reply, PINNED, "oversized reply encoding drifted");

    // The pin is self-consistent: it decodes back to the typed error with
    // the declared length in the message.
    let rsp = decode_response(&reply).unwrap();
    assert_eq!(rsp.request_id, 0);
    assert_eq!(rsp.tenant, 0);
    match rsp.body {
        ResponseBody::Err { code, message } => {
            assert_eq!(code, ErrorCode::Protocol);
            assert!(
                message.contains(&(MAX_PAYLOAD + 1).to_string()),
                "message must echo the offending declared length: {message}"
            );
            assert!(
                message.contains(&MAX_PAYLOAD.to_string()),
                "message must state the cap: {message}"
            );
        }
        other => panic!("expected Protocol error, got {other:?}"),
    }

    // Every hostile declared length echoes its own value — the reply is a
    // function of the attack, not a canned string.
    for len in [MAX_PAYLOAD + 2, u32::MAX] {
        let mut frame = Vec::new();
        frame.extend_from_slice(&MAGIC_REQUEST);
        frame.extend_from_slice(&len.to_le_bytes());
        frame.extend_from_slice(&[0u8; 16]);
        let rsp = decode_response(&engine.handle_wire(&frame)).unwrap();
        match rsp.body {
            ResponseBody::Err { code, message } => {
                assert_eq!(code, ErrorCode::Protocol);
                assert!(message.contains(&len.to_string()), "len {len}: {message}");
            }
            other => panic!("len {len}: expected Protocol error, got {other:?}"),
        }
    }
}

/// Rewrite one payload byte and *fix the CRC*, so corruption reaches the
/// semantic decoder instead of being stopped at the checksum. Every
/// position must decode to Ok or a typed error — discriminant positions to
/// their specific `Unknown*` variants — and never panic.
fn with_recrc(frame: &[u8], payload_pos: usize, value: u8) -> Vec<u8> {
    let payload_len = frame.len() - FRAME_OVERHEAD;
    assert!(payload_pos < payload_len);
    let mut bad = frame.to_vec();
    bad[8 + payload_pos] = value;
    let crc = crc32(&bad[8..8 + payload_len]);
    let end = bad.len();
    bad[end - 4..].copy_from_slice(&crc.to_le_bytes());
    bad
}

#[test]
fn recrcd_mutations_decode_totally_and_discriminants_are_typed() {
    for req in sample_requests() {
        let frame = encode_request(&req);
        let payload_len = frame.len() - FRAME_OVERHEAD;
        for pos in 0..payload_len {
            for value in [0x00u8, 0x07, 0xEE, 0xFF] {
                let bad = with_recrc(&frame, pos, value);
                // Must not panic; Ok or typed error are both acceptable —
                // many positions are plain data bytes.
                let _ = decode_request(&bad);
            }
        }
        // The verb discriminant specifically must answer UnknownVerb.
        let bad = with_recrc(&frame, VERB_TAG_OFFSET, 0xEE);
        assert!(matches!(
            decode_request(&bad),
            Err(ProtocolError::UnknownVerb(0xEE))
        ));
    }
    // Unknown criterion and axis discriminants, at their exact offsets.
    let track = encode_request(&Request {
        request_id: 1,
        tenant: 1,
        verb: Verb::Track {
            criterion: WireCriterion::FixedBand { lo: 0.0, hi: 1.0 },
            seeds: vec![(0, 0, 0, 0)],
        },
    });
    assert!(matches!(
        decode_request(&with_recrc(&track, VERB_TAG_OFFSET + 1, 9)),
        Err(ProtocolError::UnknownCriterion(9))
    ));
    let slice = encode_request(&Request {
        request_id: 1,
        tenant: 1,
        verb: Verb::RenderSlice {
            step: 0,
            axis: Axis::X,
            k: 0,
            adaptive: false,
        },
    });
    // RenderSlice body: step u32, then the axis tag.
    assert!(matches!(
        decode_request(&with_recrc(&slice, VERB_TAG_OFFSET + 5, 3)),
        Err(ProtocolError::UnknownAxis(3))
    ));
    // Response status discriminant (same offset as the request verb tag).
    let rsp = encode_response(&sample_responses()[0]);
    assert!(matches!(
        decode_response(&with_recrc(&rsp, VERB_TAG_OFFSET, 0x7F)),
        Err(ProtocolError::UnknownStatus(0x7F))
    ));
}

#[test]
fn seeded_garbage_never_panics() {
    // Deterministic garbage: splitmix64 byte streams of many lengths,
    // including some that start with valid magic so decoding gets past the
    // first gate before hitting nonsense.
    for seed in 0..64u64 {
        let len = (mix(seed) % 96) as usize;
        let mut bytes: Vec<u8> = (0..len)
            .map(|i| (mix(seed ^ (i as u64) << 32) & 0xFF) as u8)
            .collect();
        let _ = decode_request(&bytes);
        let _ = decode_response(&bytes);
        if bytes.len() >= 4 {
            bytes[..4].copy_from_slice(&MAGIC_REQUEST);
            assert!(
                decode_request(&bytes).is_err(),
                "garbage decoded Ok (seed {seed})"
            );
            bytes[..4].copy_from_slice(&MAGIC_RESPONSE);
            assert!(decode_response(&bytes).is_err());
        }
    }
}

#[test]
fn stream_reader_is_safe_against_eof_truncation_and_oversize() {
    // Clean EOF at a frame boundary → None.
    let mut empty = Cursor::new(Vec::new());
    assert!(read_frame_bytes(&mut empty, MAGIC_REQUEST)
        .unwrap()
        .is_none());

    // A full frame then EOF: frame comes out decodable, then None.
    let req = &sample_requests()[1];
    let frame = encode_request(req);
    let mut stream = Cursor::new(frame.clone());
    let got = read_frame_bytes(&mut stream, MAGIC_REQUEST)
        .unwrap()
        .unwrap()
        .unwrap();
    assert_eq!(decode_request(&got).unwrap(), *req);
    assert!(read_frame_bytes(&mut stream, MAGIC_REQUEST)
        .unwrap()
        .is_none());

    // EOF mid-frame at every cut point → Truncated, never a hang or panic.
    for n in 1..frame.len() {
        let mut cut = Cursor::new(frame[..n].to_vec());
        match read_frame_bytes(&mut cut, MAGIC_REQUEST).unwrap() {
            Some(Err(ProtocolError::Truncated { .. })) => {}
            other => panic!("cut at {n}: expected Truncated, got {other:?}"),
        }
    }

    // A hostile length prefix is rejected from the 8-byte header alone —
    // before the reader allocates or pulls a single payload byte.
    let mut hostile = Vec::new();
    hostile.extend_from_slice(&MAGIC_REQUEST);
    hostile.extend_from_slice(&u32::MAX.to_le_bytes());
    let mut stream = Cursor::new(hostile);
    match read_frame_bytes(&mut stream, MAGIC_REQUEST).unwrap() {
        Some(Err(ProtocolError::Oversized { len, .. })) => assert_eq!(len, u32::MAX),
        other => panic!("expected Oversized, got {other:?}"),
    }
}

#[test]
fn corrupted_requests_never_get_a_session_attributed_reply() {
    // End-to-end through the engine: whatever corruption arrives, the reply
    // is a Protocol error pinned to request 0 / tenant 0 — a flipped tenant
    // or request id can never echo back as if it were real, because the CRC
    // covers those fields too.
    let engine = ServeEngine::new(ServeConfig::default());
    for req in sample_requests() {
        let frame = encode_request(&req);
        for i in 0..frame.len() {
            let mut bad = frame.clone();
            bad[i] ^= 0xFF;
            let rsp =
                decode_response(&engine.handle_wire(&bad)).expect("reply must be well-formed");
            assert_eq!(rsp.request_id, 0, "flip at {i} got attributed");
            assert_eq!(rsp.tenant, 0, "flip at {i} got attributed");
            match rsp.body {
                ResponseBody::Err { code, .. } => assert_eq!(code, ErrorCode::Protocol),
                other => panic!("flip at {i}: expected Protocol error, got {other:?}"),
            }
        }
    }
}
