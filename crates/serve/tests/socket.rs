//! Unix-socket transport smoke: the thin server layer must carry the same
//! bytes the engine produces in-process — the transport adds framing, never
//! meaning.

#![cfg(unix)]

use ifet_serve::{
    serve_unix, Client, Request, ResponseBody, ServeConfig, ServeEngine, ServerOpts, Verb,
};
use std::path::PathBuf;

#[path = "../../../tests/support/mod.rs"]
mod support;
use support::serve_fixture;

fn socket_path(tag: &str) -> PathBuf {
    support::temp_dir(tag).join("ifet.sock")
}

#[test]
fn socket_round_trip_matches_in_process_engine() {
    let fx = serve_fixture("sock_rt", 0.0);
    let reqs: Vec<Request> = vec![
        Request {
            request_id: 1,
            tenant: 3,
            verb: Verb::Open {
                artifact: fx.artifact.display().to_string(),
                data_dir: fx.data_dir.display().to_string(),
            },
        },
        Request {
            request_id: 2,
            tenant: 3,
            verb: Verb::Classify { step: 0, tau: 0.5 },
        },
        Request {
            request_id: 3,
            tenant: 3,
            verb: Verb::ReportStats,
        },
        Request {
            request_id: 4,
            tenant: 3,
            verb: Verb::Close,
        },
    ];

    // In-process reference (fresh engine, same config).
    let reference: Vec<ResponseBody> = {
        let engine = ServeEngine::new(ServeConfig::default());
        reqs.iter().map(|r| engine.handle(r.clone()).body).collect()
    };

    let sock = socket_path("sock_rt");
    let engine = ServeEngine::new(ServeConfig::default());
    let server = {
        let sock = sock.clone();
        let engine = engine.clone();
        std::thread::spawn(move || {
            serve_unix(
                &sock,
                &engine,
                ServerOpts {
                    max_requests: Some(4),
                },
            )
        })
    };
    // The server binds asynchronously; connect with retry.
    let mut client = None;
    for _ in 0..500 {
        match Client::connect(&sock) {
            Ok(c) => {
                client = Some(c);
                break;
            }
            Err(_) => std::thread::sleep(std::time::Duration::from_millis(2)),
        }
    }
    let mut client = client.expect("server never came up");

    for (req, want) in reqs.iter().zip(&reference) {
        let rsp = client.call(req).unwrap();
        assert_eq!(rsp.request_id, req.request_id);
        assert_eq!(rsp.tenant, req.tenant);
        // `report-stats` is runtime-valued; everything else must match the
        // in-process engine bit for bit.
        if !matches!(req.verb, Verb::ReportStats) {
            assert_eq!(
                &rsp.body, want,
                "transport changed request {}",
                req.request_id
            );
        }
    }
    let served = server.join().unwrap().unwrap();
    assert_eq!(served, 4);
    assert!(!sock.exists(), "server must clean up its socket");
}
