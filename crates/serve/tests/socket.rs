//! Unix-socket transport smoke: the thin server layer must carry the same
//! bytes the engine produces in-process — the transport adds framing, never
//! meaning.

#![cfg(unix)]

use ifet_serve::{
    serve_unix, Client, ClientError, Request, ResponseBody, ServeConfig, ServeEngine, ServerOpts,
    Verb,
};
use std::path::{Path, PathBuf};

#[path = "../../../tests/support/mod.rs"]
mod support;
use support::serve_fixture;

fn socket_path(tag: &str) -> PathBuf {
    support::temp_dir(tag).join("ifet.sock")
}

fn connect_with_retry(sock: &Path) -> Client {
    for _ in 0..500 {
        if let Ok(c) = Client::connect(sock) {
            return c;
        }
        std::thread::sleep(std::time::Duration::from_millis(2));
    }
    panic!("server never came up on {}", sock.display());
}

#[test]
fn socket_round_trip_matches_in_process_engine() {
    let fx = serve_fixture("sock_rt", 0.0);
    let reqs: Vec<Request> = vec![
        Request {
            request_id: 1,
            tenant: 3,
            verb: Verb::Open {
                artifact: fx.artifact.display().to_string(),
                data_dir: fx.data_dir.display().to_string(),
            },
        },
        Request {
            request_id: 2,
            tenant: 3,
            verb: Verb::Classify { step: 0, tau: 0.5 },
        },
        Request {
            request_id: 3,
            tenant: 3,
            verb: Verb::ReportStats,
        },
        Request {
            request_id: 4,
            tenant: 3,
            verb: Verb::Close,
        },
    ];

    // In-process reference (fresh engine, same config).
    let reference: Vec<ResponseBody> = {
        let engine = ServeEngine::new(ServeConfig::default());
        reqs.iter().map(|r| engine.handle(r.clone()).body).collect()
    };

    let sock = socket_path("sock_rt");
    let engine = ServeEngine::new(ServeConfig::default());
    let server = {
        let sock = sock.clone();
        let engine = engine.clone();
        std::thread::spawn(move || {
            serve_unix(
                &sock,
                &engine,
                ServerOpts {
                    max_requests: Some(4),
                    workers: 0,
                },
            )
        })
    };
    // The server binds asynchronously; connect with retry.
    let mut client = connect_with_retry(&sock);

    for (req, want) in reqs.iter().zip(&reference) {
        let rsp = client.call(req).unwrap();
        assert_eq!(rsp.request_id, req.request_id);
        assert_eq!(rsp.tenant, req.tenant);
        // `report-stats` is runtime-valued; everything else must match the
        // in-process engine bit for bit.
        if !matches!(req.verb, Verb::ReportStats) {
            assert_eq!(
                &rsp.body, want,
                "transport changed request {}",
                req.request_id
            );
        }
    }
    let served = server.join().unwrap().unwrap();
    assert_eq!(served, 4);
    assert!(!sock.exists(), "server must clean up its socket");
}

/// A client talking past a `max_requests` shutdown must get the typed
/// [`ClientError::Disconnected`] — never a panic, and never a raw
/// broken-pipe `Io` (the CLI turns `Disconnected` into a friendly message,
/// so the mapping is load-bearing).
#[test]
fn reads_after_server_shutdown_surface_typed_disconnected() {
    let sock = socket_path("sock_disc");
    let engine = ServeEngine::new(ServeConfig::default());
    let server = {
        let sock = sock.clone();
        let engine = engine.clone();
        std::thread::spawn(move || {
            serve_unix(
                &sock,
                &engine,
                ServerOpts {
                    max_requests: Some(1),
                    workers: 2,
                },
            )
        })
    };
    let mut client = connect_with_retry(&sock);
    let stats = Request {
        request_id: 1,
        tenant: 0,
        verb: Verb::ReportStats,
    };
    client.call(&stats).expect("first request is served");
    let served = server.join().unwrap().unwrap();
    assert_eq!(served, 1);

    // The server is gone. Depending on timing the write may still land in
    // the socket buffer (the read then sees EOF) or fail with a broken
    // pipe; both must come back as the typed Disconnected, repeatedly.
    for _ in 0..3 {
        match client.call(&stats) {
            Err(ClientError::Disconnected) => {}
            other => panic!("expected Disconnected after shutdown, got {other:?}"),
        }
    }
}

/// Pipelined mode over a real socket: `hello` grants a depth, a burst of
/// submits goes out without awaiting, and every reply comes back matched
/// to its request id.
#[test]
fn pipelined_requests_round_trip_over_a_socket() {
    let fx = serve_fixture("sock_pipe", 0.0);
    let sock = socket_path("sock_pipe");
    let engine = ServeEngine::new(ServeConfig {
        max_inflight_per_tenant: 16,
        ..Default::default()
    });
    // open + hello + 8 pipelined + close = 11 requests.
    let server = {
        let sock = sock.clone();
        let engine = engine.clone();
        std::thread::spawn(move || {
            serve_unix(
                &sock,
                &engine,
                ServerOpts {
                    max_requests: Some(11),
                    workers: 4,
                },
            )
        })
    };
    let mut client = connect_with_retry(&sock);
    let open = client
        .call(&Request {
            request_id: 1,
            tenant: 7,
            verb: Verb::Open {
                artifact: fx.artifact.display().to_string(),
                data_dir: fx.data_dir.display().to_string(),
            },
        })
        .unwrap();
    assert!(matches!(open.body, ResponseBody::OpenOk { .. }));
    let granted = client.hello(8).unwrap();
    assert_eq!(granted, 8);

    for i in 0..8u64 {
        client
            .submit(&Request {
                request_id: 10 + i,
                tenant: 7,
                verb: Verb::Classify {
                    step: (i as u32 % 4) * support::STEP_STRIDE,
                    tau: 0.5,
                },
            })
            .unwrap();
    }
    // Await in reverse submission order: completion order is irrelevant,
    // the pending-buffer must hand each id its own reply.
    for i in (0..8u64).rev() {
        let rsp = client.await_response(10 + i).unwrap();
        assert_eq!(rsp.request_id, 10 + i);
        assert!(
            matches!(rsp.body, ResponseBody::ClassifyOk { .. }),
            "request {} failed: {:?}",
            10 + i,
            rsp.body
        );
    }
    let close = client
        .call(&Request {
            request_id: 99,
            tenant: 7,
            verb: Verb::Close,
        })
        .unwrap();
    assert!(matches!(close.body, ResponseBody::CloseOk));
    let served = server.join().unwrap().unwrap();
    assert_eq!(served, 11);
}
