//! Persistent feature tracks: stitching per-frame components into
//! identity-preserving tracks with attribute time series.
//!
//! The event layer ([`crate::events`]) reports what happened between frame
//! pairs; this module follows each feature through its continuations to give
//! the per-feature story a scientist asks for — "where did *this* vortex go,
//! how did its volume evolve, when did it split" (the Figure 9 narration,
//! and Reinders et al.'s attribute-curve tracking cited in Section 2).

use crate::attributes::FeatureAttributes;
use crate::components::{ComponentLabels, Connectivity};
use crate::events::{track_events, EventKind, TrackReport};
use ifet_volume::{Mask3, ScalarVolume};
use serde::{Deserialize, Serialize};

/// One feature followed through time.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Track {
    /// Stable track identifier.
    pub id: u32,
    /// Frame index where the track starts.
    pub start_frame: usize,
    /// Per-frame measurements, one per frame the track lives in.
    pub attributes: Vec<FeatureAttributes>,
    /// Track id of the parent when this track was born from a split.
    pub parent: Option<u32>,
    /// How the track ended.
    pub ending: TrackEnding,
}

/// Why a track stopped.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum TrackEnding {
    /// Still alive in the final frame.
    SurvivesToEnd,
    /// The feature dissipated (no successor).
    Dissipated,
    /// The feature split; children carry on as new tracks.
    Split,
    /// The feature merged into another track — `into` names the track that
    /// absorbed it, so a feature-seeded analysis (e.g. particles dropped in
    /// a grown mask) can follow its source feature across the merge.
    Merged { into: u32 },
}

impl Track {
    /// Number of frames the track spans.
    pub fn lifetime(&self) -> usize {
        self.attributes.len()
    }

    /// Total centroid travel distance over the track's life.
    pub fn path_length(&self) -> f64 {
        self.attributes
            .windows(2)
            .map(|w| w[0].centroid_distance(&w[1]))
            .sum()
    }

    /// Volume time series.
    pub fn volume_curve(&self) -> Vec<usize> {
        self.attributes.iter().map(|a| a.volume).collect()
    }
}

/// The full set of tracks extracted from a mask sequence.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TrackSet {
    pub tracks: Vec<Track>,
    /// The event report the tracks were derived from.
    pub report: TrackReport,
}

impl TrackSet {
    /// Tracks alive at frame `fi`.
    pub fn alive_at(&self, fi: usize) -> impl Iterator<Item = &Track> {
        self.tracks
            .iter()
            .filter(move |t| fi >= t.start_frame && fi < t.start_frame + t.lifetime())
    }

    /// The longest-lived track.
    pub fn longest(&self) -> Option<&Track> {
        self.tracks.iter().max_by_key(|t| t.lifetime())
    }
}

/// Build persistent tracks from per-frame masks and the matching data frames
/// (for attribute measurement). `masks.len()` must equal `frames.len()`.
///
/// Needs every frame resident at once; out-of-core callers should label and
/// measure frame-by-frame themselves (e.g. through `map_frames_windowed`)
/// and hand the parts to [`extract_tracks_from_parts`].
pub fn extract_tracks(masks: &[Mask3], frames: &[&ScalarVolume]) -> TrackSet {
    assert_eq!(masks.len(), frames.len(), "masks/frames length mismatch");
    assert!(!masks.is_empty());

    let labelings = label_masks(masks);
    let attrs: Vec<Vec<FeatureAttributes>> = labelings
        .iter()
        .zip(frames)
        .map(|(l, f)| FeatureAttributes::measure_all(l, f))
        .collect();
    let report = track_events(masks);
    extract_tracks_from_parts(&labelings, &attrs, report)
}

/// Label every mask's connected components (26-connectivity) — the labeling
/// side of [`extract_tracks`], split out so attribute measurement can page
/// frames through a bounded window instead of holding them all.
pub fn label_masks(masks: &[Mask3]) -> Vec<ComponentLabels> {
    masks
        .iter()
        .map(|m| ComponentLabels::label(m, Connectivity::TwentySix))
        .collect()
}

/// Stitch tracks from precomputed per-frame labelings, attribute tables, and
/// the event report. `attrs[fi]` must be the `measure_all` result for
/// `labelings[fi]`, and `report` the event report of the same mask sequence.
pub fn extract_tracks_from_parts(
    labelings: &[ComponentLabels],
    attrs: &[Vec<FeatureAttributes>],
    report: TrackReport,
) -> TrackSet {
    assert_eq!(
        labelings.len(),
        attrs.len(),
        "labelings/attrs length mismatch"
    );
    assert!(!labelings.is_empty());

    // active[label-1] = track index currently carrying that component.
    let mut tracks: Vec<Track> = Vec::new();
    let mut active: Vec<Option<usize>> = vec![None; labelings[0].count() as usize];

    // Frame 0: every component starts a track.
    for (ci, a) in attrs[0].iter().enumerate() {
        active[ci] = Some(tracks.len());
        tracks.push(Track {
            id: tracks.len() as u32,
            start_frame: 0,
            attributes: vec![a.clone()],
            parent: None,
            ending: TrackEnding::SurvivesToEnd,
        });
    }

    for fi in 0..labelings.len() - 1 {
        let next_count = labelings[fi + 1].count() as usize;
        let mut next_active: Vec<Option<usize>> = vec![None; next_count];

        for e in report.events.iter().filter(|e| e.frame == fi) {
            match e.kind {
                EventKind::Continuation => {
                    let ti = active[(e.before[0] - 1) as usize]
                        .expect("continuation from unknown track");
                    let la = (e.after[0] - 1) as usize;
                    tracks[ti].attributes.push(attrs[fi + 1][la].clone());
                    next_active[la] = Some(ti);
                }
                EventKind::Split => {
                    let ti = active[(e.before[0] - 1) as usize].expect("split from unknown track");
                    tracks[ti].ending = TrackEnding::Split;
                    let parent_id = tracks[ti].id;
                    for &after in &e.after {
                        let la = (after - 1) as usize;
                        next_active[la] = Some(tracks.len());
                        tracks.push(Track {
                            id: tracks.len() as u32,
                            start_frame: fi + 1,
                            attributes: vec![attrs[fi + 1][la].clone()],
                            parent: Some(parent_id),
                            ending: TrackEnding::SurvivesToEnd,
                        });
                    }
                }
                EventKind::Merge => {
                    // Resolve (or create) the absorbing track *first* so the
                    // parents' endings can name it.
                    let la = (e.after[0] - 1) as usize;
                    let result_ti = match next_active[la] {
                        Some(ti) => ti,
                        None => {
                            let ti = tracks.len();
                            next_active[la] = Some(ti);
                            tracks.push(Track {
                                id: ti as u32,
                                start_frame: fi + 1,
                                attributes: vec![attrs[fi + 1][la].clone()],
                                parent: None,
                                ending: TrackEnding::SurvivesToEnd,
                            });
                            ti
                        }
                    };
                    let into = tracks[result_ti].id;
                    for &before in &e.before {
                        if let Some(ti) = active[(before - 1) as usize] {
                            if ti != result_ti {
                                tracks[ti].ending = TrackEnding::Merged { into };
                            }
                        }
                    }
                }
                EventKind::Death => {
                    if let Some(ti) = active[(e.before[0] - 1) as usize] {
                        tracks[ti].ending = TrackEnding::Dissipated;
                    }
                }
                EventKind::Birth => {
                    let la = (e.after[0] - 1) as usize;
                    next_active[la] = Some(tracks.len());
                    tracks.push(Track {
                        id: tracks.len() as u32,
                        start_frame: fi + 1,
                        attributes: vec![attrs[fi + 1][la].clone()],
                        parent: None,
                        ending: TrackEnding::SurvivesToEnd,
                    });
                }
            }
        }
        active = next_active;
    }

    TrackSet { tracks, report }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ifet_volume::Dims3;

    fn ball(d: Dims3, c: (f32, f32, f32), r: f32) -> Mask3 {
        Mask3::from_fn(d, |x, y, z| {
            ((x as f32 - c.0).powi(2) + (y as f32 - c.1).powi(2) + (z as f32 - c.2).powi(2)).sqrt()
                <= r
        })
    }

    fn flat(d: Dims3) -> ScalarVolume {
        ScalarVolume::filled(d, 1.0)
    }

    #[test]
    fn single_moving_feature_is_one_track() {
        let d = Dims3::cube(16);
        let masks = vec![
            ball(d, (4.0, 8.0, 8.0), 2.5),
            ball(d, (6.0, 8.0, 8.0), 2.5),
            ball(d, (8.0, 8.0, 8.0), 2.5),
        ];
        let v = flat(d);
        let frames = vec![&v, &v, &v];
        let set = extract_tracks(&masks, &frames);
        assert_eq!(set.tracks.len(), 1);
        let t = &set.tracks[0];
        assert_eq!(t.lifetime(), 3);
        assert_eq!(t.ending, TrackEnding::SurvivesToEnd);
        assert!(t.path_length() > 3.0, "path {}", t.path_length());
    }

    #[test]
    fn split_creates_children_with_parent() {
        let d = Dims3::cube(20);
        let mut both = ball(d, (4.0, 10.0, 10.0), 2.5);
        both.union_with(&ball(d, (15.0, 10.0, 10.0), 2.5));
        let masks = vec![ball(d, (9.5, 10.0, 10.0), 5.0), both];
        let v = flat(d);
        let set = extract_tracks(&masks, &[&v, &v]);
        assert_eq!(set.tracks.len(), 3);
        assert_eq!(set.tracks[0].ending, TrackEnding::Split);
        let children: Vec<_> = set
            .tracks
            .iter()
            .filter(|t| t.parent == Some(set.tracks[0].id))
            .collect();
        assert_eq!(children.len(), 2);
        for c in children {
            assert_eq!(c.start_frame, 1);
            assert_eq!(c.ending, TrackEnding::SurvivesToEnd);
        }
    }

    #[test]
    fn death_marks_dissipated() {
        let d = Dims3::cube(12);
        let masks = vec![ball(d, (6.0, 6.0, 6.0), 2.0), Mask3::empty(d)];
        let v = flat(d);
        let set = extract_tracks(&masks, &[&v, &v]);
        assert_eq!(set.tracks.len(), 1);
        assert_eq!(set.tracks[0].ending, TrackEnding::Dissipated);
        assert_eq!(set.tracks[0].lifetime(), 1);
    }

    #[test]
    fn birth_starts_new_track() {
        let d = Dims3::cube(12);
        let masks = vec![Mask3::empty(d), ball(d, (6.0, 6.0, 6.0), 2.0)];
        let v = flat(d);
        let set = extract_tracks(&masks, &[&v, &v]);
        assert_eq!(set.tracks.len(), 1);
        assert_eq!(set.tracks[0].start_frame, 1);
    }

    #[test]
    fn merge_ends_both_parents() {
        let d = Dims3::cube(20);
        let mut both = ball(d, (4.0, 10.0, 10.0), 2.5);
        both.union_with(&ball(d, (15.0, 10.0, 10.0), 2.5));
        let masks = vec![both, ball(d, (9.5, 10.0, 10.0), 5.0)];
        let v = flat(d);
        let set = extract_tracks(&masks, &[&v, &v]);
        let merged: Vec<_> = set
            .tracks
            .iter()
            .filter(|t| matches!(t.ending, TrackEnding::Merged { .. }))
            .collect();
        assert_eq!(merged.len(), 2);
        // Plus the merged result as a fresh track.
        assert_eq!(set.tracks.len(), 3);
        // Both parents name the same absorbing track, and it exists and is
        // not itself one of the parents.
        let result_id = set.tracks[2].id;
        for t in merged {
            assert_eq!(t.ending, TrackEnding::Merged { into: result_id });
        }
    }

    #[test]
    fn alive_at_and_longest() {
        let d = Dims3::cube(16);
        let masks = vec![
            ball(d, (4.0, 8.0, 8.0), 2.5),
            ball(d, (6.0, 8.0, 8.0), 2.5),
            ball(d, (8.0, 8.0, 8.0), 2.5),
        ];
        let v = flat(d);
        let set = extract_tracks(&masks, &[&v, &v, &v]);
        assert_eq!(set.alive_at(0).count(), 1);
        assert_eq!(set.alive_at(2).count(), 1);
        assert_eq!(set.longest().unwrap().lifetime(), 3);
    }

    #[test]
    fn volume_curve_tracks_growth() {
        let d = Dims3::cube(16);
        let masks = vec![
            ball(d, (8.0, 8.0, 8.0), 2.0),
            ball(d, (8.0, 8.0, 8.0), 3.0),
            ball(d, (8.0, 8.0, 8.0), 4.0),
        ];
        let v = flat(d);
        let set = extract_tracks(&masks, &[&v, &v, &v]);
        let curve = set.tracks[0].volume_curve();
        assert!(curve[0] < curve[1] && curve[1] < curve[2], "{curve:?}");
    }
}
