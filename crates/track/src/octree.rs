//! Octree storage of extracted features.
//!
//! Silver & Wang (cited in Section 2) "extract the features, and organize
//! them into an octree structure to reduce the amount of data during
//! tracking". Uniform regions collapse to single nodes, so compact features
//! in a large volume store in far fewer nodes than a dense mask has voxels.

use ifet_volume::{Dims3, Mask3};
use serde::{Deserialize, Serialize};

#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
enum Node {
    Empty,
    Full,
    Mixed(Box<[Node; 8]>),
}

/// An octree-encoded boolean feature mask.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FeatureOctree {
    dims: Dims3,
    /// Side length of the padded cube (power of two covering dims).
    size: usize,
    root: Node,
}

impl FeatureOctree {
    /// Encode a mask. Space outside `dims` (padding to the power-of-two
    /// cube) is treated as empty.
    pub fn from_mask(mask: &Mask3) -> Self {
        let d = mask.dims();
        let size = d.nx.max(d.ny).max(d.nz).next_power_of_two().max(1);
        let root = build(mask, 0, 0, 0, size);
        Self {
            dims: d,
            size,
            root,
        }
    }

    pub fn dims(&self) -> Dims3 {
        self.dims
    }

    /// Membership query.
    pub fn get(&self, x: usize, y: usize, z: usize) -> bool {
        assert!(self.dims.contains(x, y, z));
        let mut node = &self.root;
        let mut size = self.size;
        let (mut ox, mut oy, mut oz) = (0usize, 0usize, 0usize);
        loop {
            match node {
                Node::Empty => return false,
                Node::Full => return true,
                Node::Mixed(children) => {
                    size /= 2;
                    let ix = usize::from(x >= ox + size);
                    let iy = usize::from(y >= oy + size);
                    let iz = usize::from(z >= oz + size);
                    ox += ix * size;
                    oy += iy * size;
                    oz += iz * size;
                    node = &children[ix + 2 * iy + 4 * iz];
                }
            }
        }
    }

    /// Total node count (the storage cost).
    pub fn node_count(&self) -> usize {
        count_nodes(&self.root)
    }

    /// Number of set voxels represented.
    pub fn voxel_count(&self) -> usize {
        count_voxels(&self.root, self.size, self.dims, 0, 0, 0)
    }

    /// Decode back into a dense mask (exact inverse of `from_mask`).
    pub fn to_mask(&self) -> Mask3 {
        let mut m = Mask3::empty(self.dims);
        fill_mask(&self.root, self.size, self.dims, 0, 0, 0, &mut m);
        m
    }

    /// Ratio of octree nodes to dense voxels (< 1 means compression).
    pub fn compression_ratio(&self) -> f64 {
        self.node_count() as f64 / self.dims.len() as f64
    }
}

fn build(mask: &Mask3, ox: usize, oy: usize, oz: usize, size: usize) -> Node {
    let d = mask.dims();
    // Entirely outside the real volume: empty padding.
    if ox >= d.nx || oy >= d.ny || oz >= d.nz {
        return Node::Empty;
    }
    if size == 1 {
        return if mask.get(ox, oy, oz) {
            Node::Full
        } else {
            Node::Empty
        };
    }

    let half = size / 2;
    let children: Vec<Node> = (0..8)
        .map(|i| {
            build(
                mask,
                ox + (i & 1) * half,
                oy + ((i >> 1) & 1) * half,
                oz + ((i >> 2) & 1) * half,
                half,
            )
        })
        .collect();

    // Collapse uniform children — but only when the block lies fully inside
    // the real volume (otherwise Full would claim padding voxels).
    let fully_inside = ox + size <= d.nx && oy + size <= d.ny && oz + size <= d.nz;
    if children.iter().all(|c| *c == Node::Empty) {
        return Node::Empty;
    }
    if fully_inside && children.iter().all(|c| *c == Node::Full) {
        return Node::Full;
    }
    let boxed: Box<[Node; 8]> = children.try_into().map(Box::new).unwrap();
    Node::Mixed(boxed)
}

fn count_nodes(n: &Node) -> usize {
    match n {
        Node::Empty | Node::Full => 1,
        Node::Mixed(c) => 1 + c.iter().map(count_nodes).sum::<usize>(),
    }
}

fn count_voxels(n: &Node, size: usize, d: Dims3, ox: usize, oy: usize, oz: usize) -> usize {
    match n {
        Node::Empty => 0,
        Node::Full => {
            // Clip the block to the real volume.
            let cx = (ox + size).min(d.nx).saturating_sub(ox);
            let cy = (oy + size).min(d.ny).saturating_sub(oy);
            let cz = (oz + size).min(d.nz).saturating_sub(oz);
            cx * cy * cz
        }
        Node::Mixed(c) => {
            let half = size / 2;
            (0..8)
                .map(|i| {
                    count_voxels(
                        &c[i],
                        half,
                        d,
                        ox + (i & 1) * half,
                        oy + ((i >> 1) & 1) * half,
                        oz + ((i >> 2) & 1) * half,
                    )
                })
                .sum()
        }
    }
}

fn fill_mask(n: &Node, size: usize, d: Dims3, ox: usize, oy: usize, oz: usize, m: &mut Mask3) {
    match n {
        Node::Empty => {}
        Node::Full => {
            for z in oz..(oz + size).min(d.nz) {
                for y in oy..(oy + size).min(d.ny) {
                    for x in ox..(ox + size).min(d.nx) {
                        m.set(x, y, z, true);
                    }
                }
            }
        }
        Node::Mixed(c) => {
            let half = size / 2;
            for i in 0..8 {
                fill_mask(
                    &c[i],
                    half,
                    d,
                    ox + (i & 1) * half,
                    oy + ((i >> 1) & 1) * half,
                    oz + ((i >> 2) & 1) * half,
                    m,
                );
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ball_mask(n: usize, r: f32) -> Mask3 {
        let c = (n as f32 - 1.0) / 2.0;
        Mask3::from_fn(Dims3::cube(n), |x, y, z| {
            ((x as f32 - c).powi(2) + (y as f32 - c).powi(2) + (z as f32 - c).powi(2)).sqrt() <= r
        })
    }

    #[test]
    fn roundtrip_exact() {
        for mask in [
            ball_mask(16, 5.0),
            Mask3::empty(Dims3::cube(8)),
            Mask3::full(Dims3::cube(8)),
            ball_mask(13, 4.0), // non-power-of-two dims
        ] {
            let tree = FeatureOctree::from_mask(&mask);
            assert_eq!(tree.to_mask(), mask, "roundtrip failed");
        }
    }

    #[test]
    fn get_matches_mask() {
        let mask = ball_mask(16, 5.0);
        let tree = FeatureOctree::from_mask(&mask);
        for z in 0..16 {
            for y in 0..16 {
                for x in 0..16 {
                    assert_eq!(tree.get(x, y, z), mask.get(x, y, z));
                }
            }
        }
    }

    #[test]
    fn voxel_count_matches() {
        let mask = ball_mask(20, 6.0);
        let tree = FeatureOctree::from_mask(&mask);
        assert_eq!(tree.voxel_count(), mask.count());
    }

    #[test]
    fn uniform_masks_are_single_nodes() {
        assert_eq!(
            FeatureOctree::from_mask(&Mask3::empty(Dims3::cube(32))).node_count(),
            1
        );
        assert_eq!(
            FeatureOctree::from_mask(&Mask3::full(Dims3::cube(32))).node_count(),
            1
        );
    }

    #[test]
    fn compact_feature_compresses() {
        // A small ball in a big volume: far fewer nodes than voxels.
        let mask = ball_mask(64, 6.0);
        let tree = FeatureOctree::from_mask(&mask);
        assert!(
            tree.compression_ratio() < 0.15,
            "ratio {}",
            tree.compression_ratio()
        );
    }

    #[test]
    fn non_cubic_dims_handled() {
        let d = Dims3::new(10, 6, 14);
        let mask = Mask3::from_fn(d, |x, y, z| (x + y + z) % 3 == 0);
        let tree = FeatureOctree::from_mask(&mask);
        assert_eq!(tree.to_mask(), mask);
        assert_eq!(tree.voxel_count(), mask.count());
    }

    #[test]
    #[should_panic]
    fn out_of_bounds_get_panics() {
        let tree = FeatureOctree::from_mask(&Mask3::empty(Dims3::cube(4)));
        let _ = tree.get(4, 0, 0);
    }
}
