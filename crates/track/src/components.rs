//! 3D connected-component labeling.
//!
//! Features "are defined as connected nodes that satisfy a certain criteria"
//! (Section 2, citing the flood-fill extraction literature). Components are
//! labeled 1..=count; 0 means background.

use ifet_volume::{Dims3, Mask3, Volume};

/// Connectivity for component labeling and region growing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Connectivity {
    /// Face-adjacent (6 neighbours).
    Six,
    /// Face-, edge- and corner-adjacent (26 neighbours).
    TwentySix,
}

/// A labeling of a mask into connected components.
#[derive(Debug, Clone, PartialEq)]
pub struct ComponentLabels {
    labels: Volume<u32>,
    count: u32,
}

impl ComponentLabels {
    /// Label the connected components of `mask` (BFS flood fill).
    pub fn label(mask: &Mask3, conn: Connectivity) -> Self {
        let d = mask.dims();
        let mut labels = Volume::filled(d, 0u32);
        let mut next = 0u32;
        let mut queue = std::collections::VecDeque::new();

        for start in 0..d.len() {
            if !mask.get_linear(start) || labels.as_slice()[start] != 0 {
                continue;
            }
            next += 1;
            labels.as_mut_slice()[start] = next;
            queue.push_back(start);
            while let Some(i) = queue.pop_front() {
                let (x, y, z) = d.coords(i);
                let mut visit = |nx: usize, ny: usize, nz: usize| {
                    let j = d.index(nx, ny, nz);
                    if mask.get_linear(j) && labels.as_slice()[j] == 0 {
                        labels.as_mut_slice()[j] = next;
                        queue.push_back(j);
                    }
                };
                match conn {
                    Connectivity::Six => {
                        for (nx, ny, nz) in d.neighbors6(x, y, z) {
                            visit(nx, ny, nz);
                        }
                    }
                    Connectivity::TwentySix => {
                        for (nx, ny, nz) in d.neighbors26(x, y, z) {
                            visit(nx, ny, nz);
                        }
                    }
                }
            }
        }

        Self {
            labels,
            count: next,
        }
    }

    /// Number of components (labels run 1..=count).
    pub fn count(&self) -> u32 {
        self.count
    }

    pub fn dims(&self) -> Dims3 {
        self.labels.dims()
    }

    /// Label of a voxel (0 = background).
    #[inline]
    pub fn label_at(&self, x: usize, y: usize, z: usize) -> u32 {
        *self.labels.get(x, y, z)
    }

    /// Raw label volume.
    pub fn labels(&self) -> &Volume<u32> {
        &self.labels
    }

    /// Voxel count per component (index 0 unused; `sizes()[l]` for label l).
    pub fn sizes(&self) -> Vec<usize> {
        let mut sizes = vec![0usize; self.count as usize + 1];
        for &l in self.labels.as_slice() {
            sizes[l as usize] += 1;
        }
        sizes[0] = 0;
        sizes
    }

    /// Mask of one component.
    pub fn component_mask(&self, label: u32) -> Mask3 {
        assert!(
            label >= 1 && label <= self.count,
            "label {label} out of range"
        );
        let d = self.labels.dims();
        let mut m = Mask3::empty(d);
        for (i, &l) in self.labels.as_slice().iter().enumerate() {
            if l == label {
                m.set_linear(i, true);
            }
        }
        m
    }

    /// The label with the most voxels (None when there are no components).
    pub fn largest(&self) -> Option<u32> {
        let sizes = self.sizes();
        (1..=self.count).max_by_key(|&l| sizes[l as usize])
    }

    /// Drop components smaller than `min_voxels`, returning the cleaned mask.
    pub fn filter_small(&self, min_voxels: usize) -> Mask3 {
        let sizes = self.sizes();
        let d = self.labels.dims();
        let mut m = Mask3::empty(d);
        for (i, &l) in self.labels.as_slice().iter().enumerate() {
            if l != 0 && sizes[l as usize] >= min_voxels {
                m.set_linear(i, true);
            }
        }
        m
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_balls(n: usize) -> Mask3 {
        let r = n as f32 * 0.15;
        let c1 = (n as f32 * 0.25, n as f32 * 0.25, n as f32 * 0.5);
        let c2 = (n as f32 * 0.75, n as f32 * 0.75, n as f32 * 0.5);
        Mask3::from_fn(Dims3::cube(n), |x, y, z| {
            let d1 =
                ((x as f32 - c1.0).powi(2) + (y as f32 - c1.1).powi(2) + (z as f32 - c1.2).powi(2))
                    .sqrt();
            let d2 =
                ((x as f32 - c2.0).powi(2) + (y as f32 - c2.1).powi(2) + (z as f32 - c2.2).powi(2))
                    .sqrt();
            d1 <= r || d2 <= r
        })
    }

    #[test]
    fn empty_mask_has_no_components() {
        let l = ComponentLabels::label(&Mask3::empty(Dims3::cube(4)), Connectivity::Six);
        assert_eq!(l.count(), 0);
        assert!(l.largest().is_none());
    }

    #[test]
    fn full_mask_is_one_component() {
        let l = ComponentLabels::label(&Mask3::full(Dims3::cube(4)), Connectivity::Six);
        assert_eq!(l.count(), 1);
        assert_eq!(l.sizes()[1], 64);
    }

    #[test]
    fn two_balls_are_two_components() {
        let m = two_balls(20);
        let l = ComponentLabels::label(&m, Connectivity::Six);
        assert_eq!(l.count(), 2);
        let sizes = l.sizes();
        assert_eq!(sizes[1] + sizes[2], m.count());
    }

    #[test]
    fn component_mask_partitions() {
        let m = two_balls(16);
        let l = ComponentLabels::label(&m, Connectivity::Six);
        let a = l.component_mask(1);
        let b = l.component_mask(2);
        assert_eq!(a.intersection_count(&b), 0);
        let mut u = a.clone();
        u.union_with(&b);
        assert_eq!(u, m);
    }

    #[test]
    fn diagonal_voxels_connectivity_dependent() {
        // Two voxels touching only at a corner: 26-connected, not 6-connected.
        let d = Dims3::cube(3);
        let mut m = Mask3::empty(d);
        m.set(0, 0, 0, true);
        m.set(1, 1, 1, true);
        assert_eq!(ComponentLabels::label(&m, Connectivity::Six).count(), 2);
        assert_eq!(
            ComponentLabels::label(&m, Connectivity::TwentySix).count(),
            1
        );
    }

    #[test]
    fn largest_picks_bigger() {
        let d = Dims3::cube(8);
        let mut m = Mask3::empty(d);
        m.set(0, 0, 0, true); // lone voxel
        for x in 3..7 {
            m.set(x, 4, 4, true); // bar of 4
        }
        let l = ComponentLabels::label(&m, Connectivity::Six);
        let big = l.largest().unwrap();
        assert_eq!(l.sizes()[big as usize], 4);
    }

    #[test]
    fn filter_small_removes_specks() {
        let d = Dims3::cube(8);
        let mut m = Mask3::empty(d);
        m.set(0, 0, 0, true);
        for x in 3..7 {
            m.set(x, 4, 4, true);
        }
        let l = ComponentLabels::label(&m, Connectivity::Six);
        let cleaned = l.filter_small(2);
        assert_eq!(cleaned.count(), 4);
        assert!(!cleaned.get(0, 0, 0));
    }

    #[test]
    #[should_panic]
    fn component_mask_bad_label_panics() {
        let l = ComponentLabels::label(&Mask3::empty(Dims3::cube(2)), Connectivity::Six);
        let _ = l.component_mask(1);
    }
}
