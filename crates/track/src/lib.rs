//! Feature tracking for time-varying volume data (paper Section 5).
//!
//! "Because of this overlap, tracking can be achieved by using 4D region
//! growing where the fourth dimension is time, and the adaptive transfer
//! function is applied to feature tracking. ... the adaptive transfer
//! function is created with the previous method and is used as the region
//! growing criteria."
//!
//! - [`components`] — 3D connected-component labeling (union-find + BFS),
//! - [`attributes`] — per-feature measurements (volume, mass, centroid,
//!   bounding box) in the spirit of Reinders et al.'s attribute tracking,
//! - [`criterion`] — pluggable region-growing criteria: a fixed value band
//!   (the conventional baseline) or per-frame adaptive transfer functions
//!   (the IATF tracking criterion),
//! - [`region_grow`] — the 4D region grower itself,
//! - [`events`] — overlap-based correspondence and event detection
//!   (continuation, split, merge, birth, death),
//! - [`octree`] — octree feature storage for data reduction during tracking
//!   (Silver & Wang's representation).

pub mod attributes;
pub mod components;
pub mod criterion;
pub mod events;
pub mod multires;
pub mod octree;
pub mod region_grow;
pub mod tracks;

pub use attributes::FeatureAttributes;
pub use components::ComponentLabels;
pub use criterion::{
    AdaptiveTfCriterion, CriterionError, FixedBandCriterion, GrowthCriterion, MaskCriterion,
};
pub use events::{track_events, Event, EventKind, TrackReport};
pub use multires::grow_4d_multires;
pub use octree::FeatureOctree;
pub use region_grow::{grow_4d, grow_4d_serial, GrowCheckpoint, GrowError, Grower, Seed4};
pub use tracks::{
    extract_tracks, extract_tracks_from_parts, label_masks, Track, TrackEnding, TrackSet,
};

/// Version of this crate's serialized model types (criteria, checkpoints,
/// reports) inside session artifacts. Bump on any breaking schema change.
pub const SCHEMA_VERSION: u32 = 1;
