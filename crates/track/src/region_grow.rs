//! 4D region growing, the paper's tracking mechanism (Section 5).
//!
//! Starting from user-selected seed voxels, the region grows through the six
//! spatial neighbours within a frame *and* through the same voxel position in
//! the previous/next frames — valid because "there is sufficient temporal
//! sampling for the matching features to overlap in 3D space for consecutive
//! time steps". The per-frame result is "saved in a 3D volume texture for
//! rendering" — here, one [`Mask3`] per frame.

use crate::criterion::GrowthCriterion;
use ifet_volume::{Mask3, TimeSeries};
use std::collections::VecDeque;

/// A seed voxel in space-time: `(frame index, x, y, z)`.
pub type Seed4 = (usize, usize, usize, usize);

/// Grow a 4D region from `seeds` through `series` under `criterion`.
///
/// Returns one mask per frame (empty masks for frames the region never
/// reaches). Seeds that fail the criterion are ignored (the user clicked
/// background).
pub fn grow_4d(
    series: &TimeSeries,
    criterion: &dyn GrowthCriterion,
    seeds: &[Seed4],
) -> Vec<Mask3> {
    assert_eq!(
        criterion.num_frames(),
        series.len(),
        "criterion covers {} frames, series has {}",
        criterion.num_frames(),
        series.len()
    );
    let d = series.dims();
    let n_frames = series.len();
    let mut masks: Vec<Mask3> = (0..n_frames).map(|_| Mask3::empty(d)).collect();
    let mut queue: VecDeque<Seed4> = VecDeque::new();

    for &(fi, x, y, z) in seeds {
        assert!(fi < n_frames, "seed frame {fi} out of range");
        assert!(d.contains(x, y, z), "seed ({x},{y},{z}) out of bounds");
        if masks[fi].get(x, y, z) {
            continue;
        }
        if criterion.accept(fi, series.frame(fi), x, y, z) {
            masks[fi].set(x, y, z, true);
            queue.push_back((fi, x, y, z));
        }
    }

    while let Some((fi, x, y, z)) = queue.pop_front() {
        // Spatial growth within the frame.
        for (nx, ny, nz) in d.neighbors6(x, y, z) {
            if !masks[fi].get(nx, ny, nz)
                && criterion.accept(fi, series.frame(fi), nx, ny, nz)
            {
                masks[fi].set(nx, ny, nz, true);
                queue.push_back((fi, nx, ny, nz));
            }
        }
        // Temporal growth: the same voxel in adjacent frames.
        for nf in [fi.wrapping_sub(1), fi + 1] {
            if nf >= n_frames {
                continue;
            }
            if !masks[nf].get(x, y, z) && criterion.accept(nf, series.frame(nf), x, y, z) {
                masks[nf].set(x, y, z, true);
                queue.push_back((nf, x, y, z));
            }
        }
    }

    masks
}

/// Total voxels captured per frame — a convenient track summary
/// (this is the series plotted in the Figure 10 experiment).
pub fn voxels_per_frame(masks: &[Mask3]) -> Vec<usize> {
    masks.iter().map(|m| m.count()).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::criterion::{FixedBandCriterion, MaskCriterion};
    use ifet_volume::{Dims3, ScalarVolume};

    /// A bright ball moving +x by 2 voxels per frame, fading 0.2 per frame.
    fn moving_ball_series() -> TimeSeries {
        let d = Dims3::cube(16);
        let frames = (0..4u32)
            .map(|t| {
                let cx = 4.0 + 2.0 * t as f32;
                let brightness = 1.0 - 0.2 * t as f32;
                let vol = ScalarVolume::from_fn(d, move |x, y, z| {
                    let dist = ((x as f32 - cx).powi(2)
                        + (y as f32 - 8.0).powi(2)
                        + (z as f32 - 8.0).powi(2))
                    .sqrt();
                    if dist <= 3.0 {
                        brightness
                    } else {
                        0.0
                    }
                });
                (t, vol)
            })
            .collect();
        TimeSeries::from_frames(frames)
    }

    #[test]
    fn grows_spatially_within_frame() {
        let s = moving_ball_series();
        let c = FixedBandCriterion::new(0.5, 2.0, s.len());
        let masks = grow_4d(&s, &c, &[(0, 4, 8, 8)]);
        // Frame 0 ball fully captured.
        let truth0 = Mask3::threshold(s.frame(0), 0.5);
        assert_eq!(masks[0], truth0);
    }

    #[test]
    fn tracks_across_frames_through_overlap() {
        let s = moving_ball_series();
        let c = FixedBandCriterion::new(0.3, 2.0, s.len());
        let masks = grow_4d(&s, &c, &[(0, 4, 8, 8)]);
        // Ball moves 2 voxels per frame with radius 3: consecutive frames
        // overlap, so every frame is reached.
        for (i, m) in masks.iter().enumerate() {
            assert!(m.count() > 0, "frame {i} not tracked");
        }
    }

    #[test]
    fn fixed_criterion_loses_fading_feature() {
        // The Figure 10 failure mode: brightness drops below the fixed band.
        let s = moving_ball_series();
        let c = FixedBandCriterion::new(0.75, 2.0, s.len());
        let masks = grow_4d(&s, &c, &[(0, 4, 8, 8)]);
        assert!(masks[0].count() > 0);
        // Frame 2 brightness = 0.6 < 0.75: lost.
        assert_eq!(masks[2].count(), 0);
        assert_eq!(masks[3].count(), 0);
    }

    #[test]
    fn seed_on_background_is_ignored() {
        let s = moving_ball_series();
        let c = FixedBandCriterion::new(0.5, 2.0, s.len());
        let masks = grow_4d(&s, &c, &[(0, 0, 0, 0)]);
        assert!(masks.iter().all(|m| m.is_empty_mask()));
    }

    #[test]
    fn disconnected_feature_not_captured() {
        // A second bright ball far away must not be swallowed.
        let d = Dims3::cube(16);
        let vol = ScalarVolume::from_fn(d, |x, y, z| {
            let d1 = ((x as f32 - 3.0).powi(2) + (y as f32 - 3.0).powi(2) + (z as f32 - 3.0).powi(2)).sqrt();
            let d2 = ((x as f32 - 12.0).powi(2) + (y as f32 - 12.0).powi(2) + (z as f32 - 12.0).powi(2)).sqrt();
            if d1 <= 2.0 || d2 <= 2.0 {
                1.0
            } else {
                0.0
            }
        });
        let s = TimeSeries::from_frames(vec![(0, vol)]);
        let c = FixedBandCriterion::new(0.5, 2.0, 1);
        let masks = grow_4d(&s, &c, &[(0, 3, 3, 3)]);
        assert!(masks[0].get(3, 3, 3));
        assert!(!masks[0].get(12, 12, 12));
    }

    #[test]
    fn grows_backward_in_time_too() {
        let s = moving_ball_series();
        let c = FixedBandCriterion::new(0.3, 2.0, s.len());
        // Seed in the LAST frame; earlier frames must still be reached.
        let masks = grow_4d(&s, &c, &[(3, 10, 8, 8)]);
        assert!(masks[0].count() > 0, "backward temporal growth failed");
    }

    #[test]
    fn mask_criterion_grow_respects_masks() {
        let d = Dims3::cube(8);
        let s = TimeSeries::from_frames(vec![(0, ScalarVolume::zeros(d))]);
        let mut allowed = Mask3::empty(d);
        for x in 2..6 {
            allowed.set(x, 4, 4, true);
        }
        let c = MaskCriterion::new(vec![allowed.clone()]);
        let masks = grow_4d(&s, &c, &[(0, 3, 4, 4)]);
        assert_eq!(masks[0], allowed);
    }

    #[test]
    fn voxels_per_frame_summary() {
        let s = moving_ball_series();
        let c = FixedBandCriterion::new(0.3, 2.0, s.len());
        let masks = grow_4d(&s, &c, &[(0, 4, 8, 8)]);
        let counts = voxels_per_frame(&masks);
        assert_eq!(counts.len(), 4);
        assert!(counts.iter().all(|&c| c > 0));
    }

    #[test]
    #[should_panic]
    fn criterion_frame_mismatch_panics() {
        let s = moving_ball_series();
        let c = FixedBandCriterion::new(0.0, 1.0, 2); // wrong frame count
        let _ = grow_4d(&s, &c, &[]);
    }

    #[test]
    #[should_panic]
    fn out_of_bounds_seed_panics() {
        let s = moving_ball_series();
        let c = FixedBandCriterion::new(0.0, 1.0, s.len());
        let _ = grow_4d(&s, &c, &[(0, 99, 0, 0)]);
    }
}
