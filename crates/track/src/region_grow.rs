//! 4D region growing, the paper's tracking mechanism (Section 5).
//!
//! Starting from user-selected seed voxels, the region grows through the six
//! spatial neighbours within a frame *and* through the same voxel position in
//! the previous/next frames — valid because "there is sufficient temporal
//! sampling for the matching features to overlap in 3D space for consecutive
//! time steps". The per-frame result is "saved in a 3D volume texture for
//! rendering" — here, one [`Mask3`] per frame.
//!
//! Two implementations share the same contract:
//!
//! * [`grow_4d_serial`] — the reference: a single queue, criterion evaluated
//!   through `accept` at every visited edge.
//! * [`grow_4d`] — level-synchronous frontier growth. Each round expands the
//!   current frontier of every frame in parallel (spatial neighbours stay
//!   within the frame, so each frame's mask is owned by one task), while
//!   temporal candidates are exchanged between rounds at a barrier. Criterion
//!   queries hit per-frame acceptance tables precomputed once via
//!   [`GrowthCriterion::precompute_frame`].
//!
//! The grown region is the connected component of the acceptance set that
//! is reachable from the seeds — a fixpoint independent of visit order — so
//! the two implementations return bit-identical masks (enforced by a
//! property test).

use crate::criterion::GrowthCriterion;
use ifet_obs as obs;
use ifet_volume::{map_frames_windowed, Dims3, FrameSource, Mask3, SeriesError};
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;
use std::time::Instant;

use rayon::prelude::*;

/// A seed voxel in space-time: `(frame index, x, y, z)`.
pub type Seed4 = (usize, usize, usize, usize);

/// Why a region-growing request is unusable.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GrowError {
    /// The criterion covers a different number of frames than the series.
    FrameCountMismatch {
        criterion_frames: usize,
        series_frames: usize,
    },
    /// A seed's frame index is past the end of the series.
    SeedFrameOutOfRange { seed: Seed4, frames: usize },
    /// A seed's spatial coordinate lies outside the volume.
    SeedOutOfBounds { seed: Seed4, dims: Dims3 },
    /// A [`GrowCheckpoint`] is inconsistent with the series it is resumed
    /// against (wrong frame count, wrong dims, or out-of-range frontier
    /// indices) — typically a corrupted or mismatched session artifact.
    BadCheckpoint { reason: String },
    /// Loading a frame from the source failed (paging I/O or a bad index).
    Source { reason: String },
}

impl From<SeriesError> for GrowError {
    fn from(e: SeriesError) -> Self {
        GrowError::Source {
            reason: e.to_string(),
        }
    }
}

impl std::fmt::Display for GrowError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::FrameCountMismatch {
                criterion_frames,
                series_frames,
            } => write!(
                f,
                "criterion covers {criterion_frames} frames, series has {series_frames}"
            ),
            Self::SeedFrameOutOfRange { seed, frames } => write!(
                f,
                "seed frame {} out of range (series has {frames} frames)",
                seed.0
            ),
            Self::SeedOutOfBounds { seed, dims } => write!(
                f,
                "seed ({}, {}, {}) out of bounds for volume {dims}",
                seed.1, seed.2, seed.3
            ),
            Self::BadCheckpoint { reason } => write!(f, "bad grow checkpoint: {reason}"),
            Self::Source { reason } => write!(f, "frame source failed: {reason}"),
        }
    }
}

impl std::error::Error for GrowError {}

pub(crate) fn validate<S: FrameSource + ?Sized>(
    series: &S,
    criterion: &dyn GrowthCriterion,
    seeds: &[Seed4],
) -> Result<(), GrowError> {
    if criterion.num_frames() != series.len() {
        return Err(GrowError::FrameCountMismatch {
            criterion_frames: criterion.num_frames(),
            series_frames: series.len(),
        });
    }
    let d = series.dims();
    for &seed in seeds {
        let (fi, x, y, z) = seed;
        if fi >= series.len() {
            return Err(GrowError::SeedFrameOutOfRange {
                seed,
                frames: series.len(),
            });
        }
        if !d.contains(x, y, z) {
            return Err(GrowError::SeedOutOfBounds { seed, dims: d });
        }
    }
    Ok(())
}

/// Grow a 4D region from `seeds` through `series` under `criterion`.
///
/// Returns one mask per frame (empty masks for frames the region never
/// reaches). Seeds that fail the criterion are ignored (the user clicked
/// background). Runs the frontier-parallel algorithm; the result is
/// bit-identical to [`grow_4d_serial`] and independent of the frame source
/// (in-core or paged — pinned by the out-of-core equivalence suite).
pub fn grow_4d<S: FrameSource + ?Sized>(
    series: &S,
    criterion: &dyn GrowthCriterion,
    seeds: &[Seed4],
) -> Result<Vec<Mask3>, GrowError> {
    let _span = obs::span("track.grow_4d");
    let mut grower = Grower::start(series, criterion, seeds)?;
    grower.run(None);
    let masks = grower.into_masks();
    if obs::is_enabled() {
        let total: usize = masks.iter().map(|m| m.count()).sum();
        obs::counter("grown_voxels", total as u64);
    }
    Ok(masks)
}

/// Per-frame growth state. One task owns one frame per round, so spatial
/// expansion needs no synchronisation; temporal candidates cross frame
/// boundaries and are applied serially between rounds.
struct FrameState {
    mask: Mask3,
    frontier: Vec<usize>,
    spatial_next: Vec<usize>,
    temporal_out: Vec<(usize, usize)>, // (target frame, linear index)
}

impl FrameState {
    fn fresh(d: Dims3) -> Self {
        Self {
            mask: Mask3::empty(d),
            frontier: Vec::new(),
            spatial_next: Vec::new(),
            temporal_out: Vec::new(),
        }
    }
}

/// A serializable snapshot of an in-progress [`Grower`], taken at a round
/// boundary. Together with the original series and criterion it is enough to
/// resume growth and reach the exact fixpoint an uninterrupted run produces:
/// the grown region is the reachable connected component of the acceptance
/// set, which is independent of visit order, and at a round boundary the
/// per-frame masks + frontiers are the *entire* algorithm state (the
/// transient spatial/temporal buffers are always empty between rounds).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GrowCheckpoint {
    /// Per-frame region state so far.
    pub masks: Vec<Mask3>,
    /// Per-frame frontier: linear voxel indices discovered in the last round.
    pub frontiers: Vec<Vec<usize>>,
    /// Number of completed rounds.
    pub rounds: u64,
}

/// The level-synchronous frontier-parallel 4D region grower, exposed as a
/// resumable state machine.
///
/// [`grow_4d`] is `start` + `run(None)` + `into_masks`. Long-running tracks
/// can instead call [`Grower::run`] with a round budget, [`Grower::checkpoint`]
/// the state, persist it, and later [`Grower::resume`] — the final masks are
/// bit-identical to an uninterrupted run (enforced by tests).
///
/// The criterion is consulted only during construction (to precompute
/// per-frame acceptance tables), so the `Grower` borrows neither the series
/// nor the criterion afterwards.
pub struct Grower {
    d: Dims3,
    tables: Vec<Mask3>,
    states: Vec<FrameState>,
    rounds: u64,
}

impl Grower {
    fn precompute_tables<S: FrameSource + ?Sized>(
        series: &S,
        criterion: &dyn GrowthCriterion,
    ) -> Result<Vec<Mask3>, GrowError> {
        let _span = obs::span("track.precompute_tables");
        obs::counter("frames", series.len() as u64);
        // Each table depends only on its own frame, so frames stream through
        // in ascending order through residency-bounded windows: one full
        // parallel pass for in-core sources, cache-capacity-sized windows for
        // paged ones. Acceptance tables (1 bit/voxel) stay resident; raw
        // frames do not. After this, the criterion is never consulted again.
        let tables: Vec<Mask3> = map_frames_windowed(series, |fi, _t, frame| {
            criterion.precompute_frame(fi, frame)
        })?;
        if obs::is_enabled() {
            let acceptance: usize = tables.iter().map(|t| t.count()).sum();
            obs::counter("acceptance_voxels", acceptance as u64);
        }
        Ok(tables)
    }

    /// Begin a fresh grow from `seeds`.
    pub fn start<S: FrameSource + ?Sized>(
        series: &S,
        criterion: &dyn GrowthCriterion,
        seeds: &[Seed4],
    ) -> Result<Self, GrowError> {
        validate(series, criterion, seeds)?;
        let d = series.dims();
        let tables = Self::precompute_tables(series, criterion)?;
        let mut states: Vec<FrameState> = (0..series.len()).map(|_| FrameState::fresh(d)).collect();
        for &(fi, x, y, z) in seeds {
            let i = d.index(x, y, z);
            if tables[fi].get_linear(i) && states[fi].mask.insert_linear(i) {
                states[fi].frontier.push(i);
            }
        }
        Ok(Self {
            d,
            tables,
            states,
            rounds: 0,
        })
    }

    /// Rebuild a grower from a persisted checkpoint.
    ///
    /// The checkpoint is validated against the series before any growth state
    /// is adopted — a corrupted or mismatched artifact yields
    /// [`GrowError::BadCheckpoint`], never a panic.
    pub fn resume<S: FrameSource + ?Sized>(
        series: &S,
        criterion: &dyn GrowthCriterion,
        ckpt: GrowCheckpoint,
    ) -> Result<Self, GrowError> {
        validate(series, criterion, &[])?;
        let d = series.dims();
        let bad = |reason: String| GrowError::BadCheckpoint { reason };
        if ckpt.masks.len() != series.len() {
            return Err(bad(format!(
                "checkpoint has {} frames, series has {}",
                ckpt.masks.len(),
                series.len()
            )));
        }
        if ckpt.frontiers.len() != series.len() {
            return Err(bad(format!(
                "checkpoint has {} frontiers for {} frames",
                ckpt.frontiers.len(),
                series.len()
            )));
        }
        for (fi, m) in ckpt.masks.iter().enumerate() {
            if m.dims() != d {
                return Err(bad(format!(
                    "frame {fi} mask dims {} do not match series dims {d}",
                    m.dims()
                )));
            }
        }
        for (fi, frontier) in ckpt.frontiers.iter().enumerate() {
            for &i in frontier {
                if i >= d.len() {
                    return Err(bad(format!(
                        "frame {fi} frontier index {i} out of range (volume has {} voxels)",
                        d.len()
                    )));
                }
                if !ckpt.masks[fi].get_linear(i) {
                    return Err(bad(format!(
                        "frame {fi} frontier index {i} is not set in its mask"
                    )));
                }
            }
        }
        let tables = Self::precompute_tables(series, criterion)?;
        let states = ckpt
            .masks
            .into_iter()
            .zip(ckpt.frontiers)
            .map(|(mask, frontier)| FrameState {
                mask,
                frontier,
                spatial_next: Vec::new(),
                temporal_out: Vec::new(),
            })
            .collect();
        Ok(Self {
            d,
            tables,
            states,
            rounds: ckpt.rounds,
        })
    }

    /// True when every frontier is exhausted (the fixpoint is reached).
    pub fn is_done(&self) -> bool {
        self.states.iter().all(|s| s.frontier.is_empty())
    }

    /// Completed rounds so far (including those before a resume).
    pub fn rounds(&self) -> u64 {
        self.rounds
    }

    /// Run at most `max_rounds` further rounds (all the way to the fixpoint
    /// when `None`). Returns `true` when growth is complete.
    pub fn run(&mut self, max_rounds: Option<u64>) -> bool {
        let _span = obs::span("track.grow_rounds");
        let mut this_call = 0u64;
        while !self.is_done() {
            if let Some(m) = max_rounds {
                if this_call >= m {
                    obs::counter("rounds", this_call);
                    return false;
                }
            }
            self.round();
            this_call += 1;
        }
        obs::counter("rounds", this_call);
        if obs::is_enabled() {
            let grown: usize = self.states.iter().map(|s| s.mask.count()).sum();
            obs::counter("grown_voxels", grown as u64);
        }
        true
    }

    /// One level-synchronous round: expand every frame's frontier in
    /// parallel, then exchange temporal candidates at the barrier.
    fn round(&mut self) {
        let _span = obs::span("track.round");
        if obs::is_enabled() {
            let frontier: usize = self.states.iter().map(|s| s.frontier.len()).sum();
            obs::counter("frontier", frontier as u64);
        }
        let d = self.d;
        let n_frames = self.states.len();
        let tables = &self.tables;
        self.states.par_iter_mut().enumerate().for_each(|(fi, st)| {
            // Declared first so the flush runs after the per-frame work.
            let _flush = obs::flush_guard();
            let table = &tables[fi];
            let frontier = std::mem::take(&mut st.frontier);
            for &i in &frontier {
                let (x, y, z) = d.coords(i);
                for (nx, ny, nz) in d.neighbors6(x, y, z) {
                    let j = d.index(nx, ny, nz);
                    if table.get_linear(j) && st.mask.insert_linear(j) {
                        st.spatial_next.push(j);
                    }
                }
                if fi > 0 {
                    st.temporal_out.push((fi - 1, i));
                }
                if fi + 1 < n_frames {
                    st.temporal_out.push((fi + 1, i));
                }
            }
            // Per-frame aggregates: sums are order-independent, so these are
            // deterministic across thread counts.
            obs::counter("accepted_spatial", st.spatial_next.len() as u64);
            obs::counter("temporal_proposals", st.temporal_out.len() as u64);
        });

        // Barrier: promote spatial discoveries to the next frontier, then
        // resolve cross-frame candidates against their target frames.
        let barrier_start = Instant::now();
        let mut accepted_temporal = 0u64;
        let mut proposals: Vec<(usize, usize)> = Vec::new();
        for st in &mut self.states {
            st.frontier = std::mem::take(&mut st.spatial_next);
            proposals.append(&mut st.temporal_out);
        }
        for (tf, i) in proposals {
            if self.tables[tf].get_linear(i) && self.states[tf].mask.insert_linear(i) {
                self.states[tf].frontier.push(i);
                accepted_temporal += 1;
            }
        }
        obs::counter("accepted_temporal", accepted_temporal);
        obs::counter_runtime("barrier_ns", barrier_start.elapsed().as_nanos() as u64);
        self.rounds += 1;
    }

    /// Snapshot the growth state. Only valid between [`Grower::run`] calls
    /// (which is the only time callers can observe the grower), where the
    /// transient buffers are empty by construction.
    pub fn checkpoint(&self) -> GrowCheckpoint {
        debug_assert!(self
            .states
            .iter()
            .all(|s| s.spatial_next.is_empty() && s.temporal_out.is_empty()));
        GrowCheckpoint {
            masks: self.states.iter().map(|s| s.mask.clone()).collect(),
            frontiers: self.states.iter().map(|s| s.frontier.clone()).collect(),
            rounds: self.rounds,
        }
    }

    /// Consume the grower, yielding one mask per frame.
    pub fn into_masks(self) -> Vec<Mask3> {
        self.states.into_iter().map(|s| s.mask).collect()
    }
}

/// Single-threaded reference implementation of [`grow_4d`]: one FIFO queue,
/// criterion consulted through [`GrowthCriterion::accept`] at every edge.
pub fn grow_4d_serial<S: FrameSource + ?Sized>(
    series: &S,
    criterion: &dyn GrowthCriterion,
    seeds: &[Seed4],
) -> Result<Vec<Mask3>, GrowError> {
    validate(series, criterion, seeds)?;
    let d = series.dims();
    let n_frames = series.len();
    let mut masks: Vec<Mask3> = (0..n_frames).map(|_| Mask3::empty(d)).collect();
    let mut queue: VecDeque<Seed4> = VecDeque::new();

    for &(fi, x, y, z) in seeds {
        if masks[fi].get(x, y, z) {
            continue;
        }
        let frame = series.frame(fi)?;
        if criterion.accept(fi, &frame, x, y, z) {
            masks[fi].set(x, y, z, true);
            queue.push_back((fi, x, y, z));
        }
    }

    while let Some((fi, x, y, z)) = queue.pop_front() {
        // Spatial growth within the frame. The handle is held across the
        // neighbour sweep so a paged source reads the frame at most once here.
        let frame = series.frame(fi)?;
        for (nx, ny, nz) in d.neighbors6(x, y, z) {
            if !masks[fi].get(nx, ny, nz) && criterion.accept(fi, &frame, nx, ny, nz) {
                masks[fi].set(nx, ny, nz, true);
                queue.push_back((fi, nx, ny, nz));
            }
        }
        drop(frame);
        // Temporal growth: the same voxel in adjacent frames.
        for nf in [fi.wrapping_sub(1), fi + 1] {
            if nf >= n_frames {
                continue;
            }
            if masks[nf].get(x, y, z) {
                continue;
            }
            let nframe = series.frame(nf)?;
            if criterion.accept(nf, &nframe, x, y, z) {
                masks[nf].set(x, y, z, true);
                queue.push_back((nf, x, y, z));
            }
        }
    }

    Ok(masks)
}

/// Total voxels captured per frame — a convenient track summary
/// (this is the series plotted in the Figure 10 experiment).
pub fn voxels_per_frame(masks: &[Mask3]) -> Vec<usize> {
    masks.iter().map(|m| m.count()).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::criterion::{FixedBandCriterion, MaskCriterion};
    use ifet_volume::{Dims3, ScalarVolume, TimeSeries};

    /// A bright ball moving +x by 2 voxels per frame, fading 0.2 per frame.
    fn moving_ball_series() -> TimeSeries {
        let d = Dims3::cube(16);
        let frames = (0..4u32)
            .map(|t| {
                let cx = 4.0 + 2.0 * t as f32;
                let brightness = 1.0 - 0.2 * t as f32;
                let vol = ScalarVolume::from_fn(d, move |x, y, z| {
                    let dist = ((x as f32 - cx).powi(2)
                        + (y as f32 - 8.0).powi(2)
                        + (z as f32 - 8.0).powi(2))
                    .sqrt();
                    if dist <= 3.0 {
                        brightness
                    } else {
                        0.0
                    }
                });
                (t, vol)
            })
            .collect();
        TimeSeries::from_frames(frames)
    }

    #[test]
    fn grows_spatially_within_frame() {
        let s = moving_ball_series();
        let c = FixedBandCriterion::new(0.5, 2.0, s.len()).unwrap();
        let masks = grow_4d(&s, &c, &[(0, 4, 8, 8)]).unwrap();
        // Frame 0 ball fully captured.
        let truth0 = Mask3::threshold(s.frame(0), 0.5);
        assert_eq!(masks[0], truth0);
    }

    #[test]
    fn tracks_across_frames_through_overlap() {
        let s = moving_ball_series();
        let c = FixedBandCriterion::new(0.3, 2.0, s.len()).unwrap();
        let masks = grow_4d(&s, &c, &[(0, 4, 8, 8)]).unwrap();
        // Ball moves 2 voxels per frame with radius 3: consecutive frames
        // overlap, so every frame is reached.
        for (i, m) in masks.iter().enumerate() {
            assert!(m.count() > 0, "frame {i} not tracked");
        }
    }

    #[test]
    fn fixed_criterion_loses_fading_feature() {
        // The Figure 10 failure mode: brightness drops below the fixed band.
        let s = moving_ball_series();
        let c = FixedBandCriterion::new(0.75, 2.0, s.len()).unwrap();
        let masks = grow_4d(&s, &c, &[(0, 4, 8, 8)]).unwrap();
        assert!(masks[0].count() > 0);
        // Frame 2 brightness = 0.6 < 0.75: lost.
        assert_eq!(masks[2].count(), 0);
        assert_eq!(masks[3].count(), 0);
    }

    #[test]
    fn seed_on_background_is_ignored() {
        let s = moving_ball_series();
        let c = FixedBandCriterion::new(0.5, 2.0, s.len()).unwrap();
        let masks = grow_4d(&s, &c, &[(0, 0, 0, 0)]).unwrap();
        assert!(masks.iter().all(|m| m.is_empty_mask()));
    }

    #[test]
    fn disconnected_feature_not_captured() {
        // A second bright ball far away must not be swallowed.
        let d = Dims3::cube(16);
        let vol = ScalarVolume::from_fn(d, |x, y, z| {
            let d1 =
                ((x as f32 - 3.0).powi(2) + (y as f32 - 3.0).powi(2) + (z as f32 - 3.0).powi(2))
                    .sqrt();
            let d2 =
                ((x as f32 - 12.0).powi(2) + (y as f32 - 12.0).powi(2) + (z as f32 - 12.0).powi(2))
                    .sqrt();
            if d1 <= 2.0 || d2 <= 2.0 {
                1.0
            } else {
                0.0
            }
        });
        let s = TimeSeries::from_frames(vec![(0, vol)]);
        let c = FixedBandCriterion::new(0.5, 2.0, 1).unwrap();
        let masks = grow_4d(&s, &c, &[(0, 3, 3, 3)]).unwrap();
        assert!(masks[0].get(3, 3, 3));
        assert!(!masks[0].get(12, 12, 12));
    }

    #[test]
    fn grows_backward_in_time_too() {
        let s = moving_ball_series();
        let c = FixedBandCriterion::new(0.3, 2.0, s.len()).unwrap();
        // Seed in the LAST frame; earlier frames must still be reached.
        let masks = grow_4d(&s, &c, &[(3, 10, 8, 8)]).unwrap();
        assert!(masks[0].count() > 0, "backward temporal growth failed");
    }

    #[test]
    fn mask_criterion_grow_respects_masks() {
        let d = Dims3::cube(8);
        let s = TimeSeries::from_frames(vec![(0, ScalarVolume::zeros(d))]);
        let mut allowed = Mask3::empty(d);
        for x in 2..6 {
            allowed.set(x, 4, 4, true);
        }
        let c = MaskCriterion::new(vec![allowed.clone()]).unwrap();
        let masks = grow_4d(&s, &c, &[(0, 3, 4, 4)]).unwrap();
        assert_eq!(masks[0], allowed);
    }

    #[test]
    fn voxels_per_frame_summary() {
        let s = moving_ball_series();
        let c = FixedBandCriterion::new(0.3, 2.0, s.len()).unwrap();
        let masks = grow_4d(&s, &c, &[(0, 4, 8, 8)]).unwrap();
        let counts = voxels_per_frame(&masks);
        assert_eq!(counts.len(), 4);
        assert!(counts.iter().all(|&c| c > 0));
    }

    #[test]
    fn parallel_matches_serial_on_fixture() {
        let s = moving_ball_series();
        let c = FixedBandCriterion::new(0.3, 2.0, s.len()).unwrap();
        let seeds = [(0, 4, 8, 8), (3, 10, 8, 8), (1, 0, 0, 0)];
        assert_eq!(
            grow_4d(&s, &c, &seeds).unwrap(),
            grow_4d_serial(&s, &c, &seeds).unwrap()
        );
    }

    #[test]
    fn criterion_frame_mismatch_is_error() {
        let s = moving_ball_series();
        let c = FixedBandCriterion::new(0.0, 1.0, 2).unwrap(); // wrong frame count
        let err = grow_4d(&s, &c, &[]).unwrap_err();
        assert_eq!(
            err,
            GrowError::FrameCountMismatch {
                criterion_frames: 2,
                series_frames: 4
            }
        );
        assert_eq!(grow_4d_serial(&s, &c, &[]).unwrap_err(), err);
    }

    #[test]
    fn out_of_bounds_seed_is_error() {
        let s = moving_ball_series();
        let c = FixedBandCriterion::new(0.0, 1.0, s.len()).unwrap();
        let err = grow_4d(&s, &c, &[(0, 99, 0, 0)]).unwrap_err();
        assert!(matches!(err, GrowError::SeedOutOfBounds { .. }));
        assert_eq!(grow_4d_serial(&s, &c, &[(0, 99, 0, 0)]).unwrap_err(), err);
    }

    #[test]
    fn out_of_range_seed_frame_is_error() {
        let s = moving_ball_series();
        let c = FixedBandCriterion::new(0.0, 1.0, s.len()).unwrap();
        let err = grow_4d(&s, &c, &[(9, 0, 0, 0)]).unwrap_err();
        assert_eq!(
            err,
            GrowError::SeedFrameOutOfRange {
                seed: (9, 0, 0, 0),
                frames: 4
            }
        );
    }

    #[test]
    fn checkpoint_resume_matches_uninterrupted() {
        let s = moving_ball_series();
        let c = FixedBandCriterion::new(0.3, 2.0, s.len()).unwrap();
        let seeds = [(0, 4, 8, 8)];
        let uninterrupted = grow_4d(&s, &c, &seeds).unwrap();

        // Interrupt after every possible number of rounds; each resume must
        // land on the identical fixpoint.
        for budget in 0..20u64 {
            let mut g = Grower::start(&s, &c, &seeds).unwrap();
            let done = g.run(Some(budget));
            let ckpt = g.checkpoint();
            assert_eq!(done, ckpt.frontiers.iter().all(|f| f.is_empty()));
            let mut resumed = Grower::resume(&s, &c, ckpt).unwrap();
            assert!(resumed.run(None));
            assert_eq!(resumed.into_masks(), uninterrupted, "budget {budget}");
        }
    }

    #[test]
    fn checkpoint_roundtrips_as_json() {
        let s = moving_ball_series();
        let c = FixedBandCriterion::new(0.3, 2.0, s.len()).unwrap();
        let mut g = Grower::start(&s, &c, &[(0, 4, 8, 8)]).unwrap();
        g.run(Some(2));
        let ckpt = g.checkpoint();
        let back: GrowCheckpoint =
            serde_json::from_str(&serde_json::to_string(&ckpt).unwrap()).unwrap();
        assert_eq!(back, ckpt);
        assert_eq!(back.rounds, 2);
    }

    #[test]
    fn bad_checkpoints_are_typed_errors() {
        let s = moving_ball_series();
        let c = FixedBandCriterion::new(0.3, 2.0, s.len()).unwrap();
        let mut g = Grower::start(&s, &c, &[(0, 4, 8, 8)]).unwrap();
        g.run(Some(1));
        let good = g.checkpoint();

        // Wrong frame count.
        let mut ck = good.clone();
        ck.masks.pop();
        assert!(matches!(
            Grower::resume(&s, &c, ck),
            Err(GrowError::BadCheckpoint { .. })
        ));
        // Wrong mask dims.
        let mut ck = good.clone();
        ck.masks[0] = Mask3::empty(Dims3::cube(4));
        assert!(matches!(
            Grower::resume(&s, &c, ck),
            Err(GrowError::BadCheckpoint { .. })
        ));
        // Out-of-range frontier index.
        let mut ck = good.clone();
        ck.frontiers[0] = vec![usize::MAX];
        assert!(matches!(
            Grower::resume(&s, &c, ck),
            Err(GrowError::BadCheckpoint { .. })
        ));
        // Frontier voxel not present in its mask.
        let mut ck = good.clone();
        let unset = (0..s.dims().len())
            .find(|&i| !ck.masks[1].get_linear(i))
            .unwrap();
        ck.frontiers[1] = vec![unset];
        assert!(matches!(
            Grower::resume(&s, &c, ck),
            Err(GrowError::BadCheckpoint { .. })
        ));
        // The untouched checkpoint still resumes fine.
        assert!(Grower::resume(&s, &c, good).is_ok());
    }

    #[test]
    fn grow_errors_display() {
        let e = GrowError::FrameCountMismatch {
            criterion_frames: 2,
            series_frames: 4,
        };
        assert!(e.to_string().contains("2 frames"));
        let e = GrowError::SeedOutOfBounds {
            seed: (0, 99, 0, 0),
            dims: Dims3::cube(16),
        };
        assert!(e.to_string().contains("(99, 0, 0)"));
    }
}
