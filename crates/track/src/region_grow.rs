//! 4D region growing, the paper's tracking mechanism (Section 5).
//!
//! Starting from user-selected seed voxels, the region grows through the six
//! spatial neighbours within a frame *and* through the same voxel position in
//! the previous/next frames — valid because "there is sufficient temporal
//! sampling for the matching features to overlap in 3D space for consecutive
//! time steps". The per-frame result is "saved in a 3D volume texture for
//! rendering" — here, one [`Mask3`] per frame.
//!
//! Two implementations share the same contract:
//!
//! * [`grow_4d_serial`] — the reference: a single queue, criterion evaluated
//!   through `accept` at every visited edge.
//! * [`grow_4d`] — level-synchronous frontier growth. Each round expands the
//!   current frontier of every frame in parallel (spatial neighbours stay
//!   within the frame, so each frame's mask is owned by one task), while
//!   temporal candidates are exchanged between rounds at a barrier. Criterion
//!   queries hit per-frame acceptance tables precomputed once via
//!   [`GrowthCriterion::precompute_frame`].
//!
//! The grown region is the connected component of the acceptance set that
//! is reachable from the seeds — a fixpoint independent of visit order — so
//! the two implementations return bit-identical masks (enforced by a
//! property test).

use crate::criterion::GrowthCriterion;
use ifet_volume::{Dims3, Mask3, TimeSeries};
use std::collections::VecDeque;

use rayon::prelude::*;

/// A seed voxel in space-time: `(frame index, x, y, z)`.
pub type Seed4 = (usize, usize, usize, usize);

/// Why a region-growing request is unusable.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GrowError {
    /// The criterion covers a different number of frames than the series.
    FrameCountMismatch {
        criterion_frames: usize,
        series_frames: usize,
    },
    /// A seed's frame index is past the end of the series.
    SeedFrameOutOfRange { seed: Seed4, frames: usize },
    /// A seed's spatial coordinate lies outside the volume.
    SeedOutOfBounds { seed: Seed4, dims: Dims3 },
}

impl std::fmt::Display for GrowError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::FrameCountMismatch {
                criterion_frames,
                series_frames,
            } => write!(
                f,
                "criterion covers {criterion_frames} frames, series has {series_frames}"
            ),
            Self::SeedFrameOutOfRange { seed, frames } => write!(
                f,
                "seed frame {} out of range (series has {frames} frames)",
                seed.0
            ),
            Self::SeedOutOfBounds { seed, dims } => write!(
                f,
                "seed ({}, {}, {}) out of bounds for volume {dims}",
                seed.1, seed.2, seed.3
            ),
        }
    }
}

impl std::error::Error for GrowError {}

pub(crate) fn validate(
    series: &TimeSeries,
    criterion: &dyn GrowthCriterion,
    seeds: &[Seed4],
) -> Result<(), GrowError> {
    if criterion.num_frames() != series.len() {
        return Err(GrowError::FrameCountMismatch {
            criterion_frames: criterion.num_frames(),
            series_frames: series.len(),
        });
    }
    let d = series.dims();
    for &seed in seeds {
        let (fi, x, y, z) = seed;
        if fi >= series.len() {
            return Err(GrowError::SeedFrameOutOfRange {
                seed,
                frames: series.len(),
            });
        }
        if !d.contains(x, y, z) {
            return Err(GrowError::SeedOutOfBounds { seed, dims: d });
        }
    }
    Ok(())
}

/// Grow a 4D region from `seeds` through `series` under `criterion`.
///
/// Returns one mask per frame (empty masks for frames the region never
/// reaches). Seeds that fail the criterion are ignored (the user clicked
/// background). Runs the frontier-parallel algorithm; the result is
/// bit-identical to [`grow_4d_serial`].
pub fn grow_4d(
    series: &TimeSeries,
    criterion: &dyn GrowthCriterion,
    seeds: &[Seed4],
) -> Result<Vec<Mask3>, GrowError> {
    validate(series, criterion, seeds)?;
    let d = series.dims();
    let n_frames = series.len();

    // Per-frame acceptance tables, evaluated in parallel: after this, the
    // criterion is never consulted again.
    let tables: Vec<Mask3> = (0..n_frames)
        .into_par_iter()
        .map(|fi| criterion.precompute_frame(fi, series.frame(fi)))
        .collect();

    // Per-frame growth state. One task owns one frame per round, so spatial
    // expansion needs no synchronisation; temporal candidates cross frame
    // boundaries and are applied serially between rounds.
    struct FrameState {
        mask: Mask3,
        frontier: Vec<usize>,
        spatial_next: Vec<usize>,
        temporal_out: Vec<(usize, usize)>, // (target frame, linear index)
    }

    let mut states: Vec<FrameState> = (0..n_frames)
        .map(|_| FrameState {
            mask: Mask3::empty(d),
            frontier: Vec::new(),
            spatial_next: Vec::new(),
            temporal_out: Vec::new(),
        })
        .collect();

    for &(fi, x, y, z) in seeds {
        let i = d.index(x, y, z);
        if tables[fi].get_linear(i) && states[fi].mask.insert_linear(i) {
            states[fi].frontier.push(i);
        }
    }

    while states.iter().any(|s| !s.frontier.is_empty()) {
        // Expand every frame's frontier one level, in parallel.
        states.par_iter_mut().enumerate().for_each(|(fi, st)| {
            let table = &tables[fi];
            let frontier = std::mem::take(&mut st.frontier);
            for &i in &frontier {
                let (x, y, z) = d.coords(i);
                for (nx, ny, nz) in d.neighbors6(x, y, z) {
                    let j = d.index(nx, ny, nz);
                    if table.get_linear(j) && st.mask.insert_linear(j) {
                        st.spatial_next.push(j);
                    }
                }
                if fi > 0 {
                    st.temporal_out.push((fi - 1, i));
                }
                if fi + 1 < n_frames {
                    st.temporal_out.push((fi + 1, i));
                }
            }
        });

        // Barrier: promote spatial discoveries to the next frontier, then
        // resolve cross-frame candidates against their target frames.
        let mut proposals: Vec<(usize, usize)> = Vec::new();
        for st in &mut states {
            st.frontier = std::mem::take(&mut st.spatial_next);
            proposals.append(&mut st.temporal_out);
        }
        for (tf, i) in proposals {
            if tables[tf].get_linear(i) && states[tf].mask.insert_linear(i) {
                states[tf].frontier.push(i);
            }
        }
    }

    Ok(states.into_iter().map(|s| s.mask).collect())
}

/// Single-threaded reference implementation of [`grow_4d`]: one FIFO queue,
/// criterion consulted through [`GrowthCriterion::accept`] at every edge.
pub fn grow_4d_serial(
    series: &TimeSeries,
    criterion: &dyn GrowthCriterion,
    seeds: &[Seed4],
) -> Result<Vec<Mask3>, GrowError> {
    validate(series, criterion, seeds)?;
    let d = series.dims();
    let n_frames = series.len();
    let mut masks: Vec<Mask3> = (0..n_frames).map(|_| Mask3::empty(d)).collect();
    let mut queue: VecDeque<Seed4> = VecDeque::new();

    for &(fi, x, y, z) in seeds {
        if masks[fi].get(x, y, z) {
            continue;
        }
        if criterion.accept(fi, series.frame(fi), x, y, z) {
            masks[fi].set(x, y, z, true);
            queue.push_back((fi, x, y, z));
        }
    }

    while let Some((fi, x, y, z)) = queue.pop_front() {
        // Spatial growth within the frame.
        for (nx, ny, nz) in d.neighbors6(x, y, z) {
            if !masks[fi].get(nx, ny, nz) && criterion.accept(fi, series.frame(fi), nx, ny, nz) {
                masks[fi].set(nx, ny, nz, true);
                queue.push_back((fi, nx, ny, nz));
            }
        }
        // Temporal growth: the same voxel in adjacent frames.
        for nf in [fi.wrapping_sub(1), fi + 1] {
            if nf >= n_frames {
                continue;
            }
            if !masks[nf].get(x, y, z) && criterion.accept(nf, series.frame(nf), x, y, z) {
                masks[nf].set(x, y, z, true);
                queue.push_back((nf, x, y, z));
            }
        }
    }

    Ok(masks)
}

/// Total voxels captured per frame — a convenient track summary
/// (this is the series plotted in the Figure 10 experiment).
pub fn voxels_per_frame(masks: &[Mask3]) -> Vec<usize> {
    masks.iter().map(|m| m.count()).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::criterion::{FixedBandCriterion, MaskCriterion};
    use ifet_volume::{Dims3, ScalarVolume};

    /// A bright ball moving +x by 2 voxels per frame, fading 0.2 per frame.
    fn moving_ball_series() -> TimeSeries {
        let d = Dims3::cube(16);
        let frames = (0..4u32)
            .map(|t| {
                let cx = 4.0 + 2.0 * t as f32;
                let brightness = 1.0 - 0.2 * t as f32;
                let vol = ScalarVolume::from_fn(d, move |x, y, z| {
                    let dist = ((x as f32 - cx).powi(2)
                        + (y as f32 - 8.0).powi(2)
                        + (z as f32 - 8.0).powi(2))
                    .sqrt();
                    if dist <= 3.0 {
                        brightness
                    } else {
                        0.0
                    }
                });
                (t, vol)
            })
            .collect();
        TimeSeries::from_frames(frames)
    }

    #[test]
    fn grows_spatially_within_frame() {
        let s = moving_ball_series();
        let c = FixedBandCriterion::new(0.5, 2.0, s.len());
        let masks = grow_4d(&s, &c, &[(0, 4, 8, 8)]).unwrap();
        // Frame 0 ball fully captured.
        let truth0 = Mask3::threshold(s.frame(0), 0.5);
        assert_eq!(masks[0], truth0);
    }

    #[test]
    fn tracks_across_frames_through_overlap() {
        let s = moving_ball_series();
        let c = FixedBandCriterion::new(0.3, 2.0, s.len());
        let masks = grow_4d(&s, &c, &[(0, 4, 8, 8)]).unwrap();
        // Ball moves 2 voxels per frame with radius 3: consecutive frames
        // overlap, so every frame is reached.
        for (i, m) in masks.iter().enumerate() {
            assert!(m.count() > 0, "frame {i} not tracked");
        }
    }

    #[test]
    fn fixed_criterion_loses_fading_feature() {
        // The Figure 10 failure mode: brightness drops below the fixed band.
        let s = moving_ball_series();
        let c = FixedBandCriterion::new(0.75, 2.0, s.len());
        let masks = grow_4d(&s, &c, &[(0, 4, 8, 8)]).unwrap();
        assert!(masks[0].count() > 0);
        // Frame 2 brightness = 0.6 < 0.75: lost.
        assert_eq!(masks[2].count(), 0);
        assert_eq!(masks[3].count(), 0);
    }

    #[test]
    fn seed_on_background_is_ignored() {
        let s = moving_ball_series();
        let c = FixedBandCriterion::new(0.5, 2.0, s.len());
        let masks = grow_4d(&s, &c, &[(0, 0, 0, 0)]).unwrap();
        assert!(masks.iter().all(|m| m.is_empty_mask()));
    }

    #[test]
    fn disconnected_feature_not_captured() {
        // A second bright ball far away must not be swallowed.
        let d = Dims3::cube(16);
        let vol = ScalarVolume::from_fn(d, |x, y, z| {
            let d1 =
                ((x as f32 - 3.0).powi(2) + (y as f32 - 3.0).powi(2) + (z as f32 - 3.0).powi(2))
                    .sqrt();
            let d2 =
                ((x as f32 - 12.0).powi(2) + (y as f32 - 12.0).powi(2) + (z as f32 - 12.0).powi(2))
                    .sqrt();
            if d1 <= 2.0 || d2 <= 2.0 {
                1.0
            } else {
                0.0
            }
        });
        let s = TimeSeries::from_frames(vec![(0, vol)]);
        let c = FixedBandCriterion::new(0.5, 2.0, 1);
        let masks = grow_4d(&s, &c, &[(0, 3, 3, 3)]).unwrap();
        assert!(masks[0].get(3, 3, 3));
        assert!(!masks[0].get(12, 12, 12));
    }

    #[test]
    fn grows_backward_in_time_too() {
        let s = moving_ball_series();
        let c = FixedBandCriterion::new(0.3, 2.0, s.len());
        // Seed in the LAST frame; earlier frames must still be reached.
        let masks = grow_4d(&s, &c, &[(3, 10, 8, 8)]).unwrap();
        assert!(masks[0].count() > 0, "backward temporal growth failed");
    }

    #[test]
    fn mask_criterion_grow_respects_masks() {
        let d = Dims3::cube(8);
        let s = TimeSeries::from_frames(vec![(0, ScalarVolume::zeros(d))]);
        let mut allowed = Mask3::empty(d);
        for x in 2..6 {
            allowed.set(x, 4, 4, true);
        }
        let c = MaskCriterion::new(vec![allowed.clone()]);
        let masks = grow_4d(&s, &c, &[(0, 3, 4, 4)]).unwrap();
        assert_eq!(masks[0], allowed);
    }

    #[test]
    fn voxels_per_frame_summary() {
        let s = moving_ball_series();
        let c = FixedBandCriterion::new(0.3, 2.0, s.len());
        let masks = grow_4d(&s, &c, &[(0, 4, 8, 8)]).unwrap();
        let counts = voxels_per_frame(&masks);
        assert_eq!(counts.len(), 4);
        assert!(counts.iter().all(|&c| c > 0));
    }

    #[test]
    fn parallel_matches_serial_on_fixture() {
        let s = moving_ball_series();
        let c = FixedBandCriterion::new(0.3, 2.0, s.len());
        let seeds = [(0, 4, 8, 8), (3, 10, 8, 8), (1, 0, 0, 0)];
        assert_eq!(
            grow_4d(&s, &c, &seeds).unwrap(),
            grow_4d_serial(&s, &c, &seeds).unwrap()
        );
    }

    #[test]
    fn criterion_frame_mismatch_is_error() {
        let s = moving_ball_series();
        let c = FixedBandCriterion::new(0.0, 1.0, 2); // wrong frame count
        let err = grow_4d(&s, &c, &[]).unwrap_err();
        assert_eq!(
            err,
            GrowError::FrameCountMismatch {
                criterion_frames: 2,
                series_frames: 4
            }
        );
        assert_eq!(grow_4d_serial(&s, &c, &[]).unwrap_err(), err);
    }

    #[test]
    fn out_of_bounds_seed_is_error() {
        let s = moving_ball_series();
        let c = FixedBandCriterion::new(0.0, 1.0, s.len());
        let err = grow_4d(&s, &c, &[(0, 99, 0, 0)]).unwrap_err();
        assert!(matches!(err, GrowError::SeedOutOfBounds { .. }));
        assert_eq!(grow_4d_serial(&s, &c, &[(0, 99, 0, 0)]).unwrap_err(), err);
    }

    #[test]
    fn out_of_range_seed_frame_is_error() {
        let s = moving_ball_series();
        let c = FixedBandCriterion::new(0.0, 1.0, s.len());
        let err = grow_4d(&s, &c, &[(9, 0, 0, 0)]).unwrap_err();
        assert_eq!(
            err,
            GrowError::SeedFrameOutOfRange {
                seed: (9, 0, 0, 0),
                frames: 4
            }
        );
    }

    #[test]
    fn grow_errors_display() {
        let e = GrowError::FrameCountMismatch {
            criterion_frames: 2,
            series_frames: 4,
        };
        assert!(e.to_string().contains("2 frames"));
        let e = GrowError::SeedOutOfBounds {
            seed: (0, 99, 0, 0),
            dims: Dims3::cube(16),
        };
        assert!(e.to_string().contains("(99, 0, 0)"));
    }
}
