//! Overlap-based correspondence and event detection.
//!
//! "Feature tracking is the process of capturing all the events for one or
//! more features" (Section 5). Components of consecutive frames are matched
//! by voxel overlap; the bipartite correspondence then yields the classical
//! event vocabulary: continuation, split, merge, birth (dissipation's
//! inverse) and death.

use crate::components::{ComponentLabels, Connectivity};
use ifet_volume::Mask3;
use serde::{Deserialize, Serialize};

/// What happened to features between two consecutive frames.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum EventKind {
    /// One component maps to exactly one component.
    Continuation,
    /// One component maps to several.
    Split,
    /// Several components map to one.
    Merge,
    /// A component with no predecessor appeared.
    Birth,
    /// A component with no successor vanished.
    Death,
}

/// One detected event at the transition `frame -> frame + 1`.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Event {
    /// Index of the earlier frame of the transition.
    pub frame: usize,
    pub kind: EventKind,
    /// Labels in the earlier frame involved in the event.
    pub before: Vec<u32>,
    /// Labels in the later frame involved in the event.
    pub after: Vec<u32>,
}

/// Full tracking report over a mask sequence.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TrackReport {
    /// Component count per frame.
    pub components_per_frame: Vec<u32>,
    /// Voxel count per frame.
    pub voxels_per_frame: Vec<usize>,
    /// All detected events, ordered by frame.
    pub events: Vec<Event>,
}

impl TrackReport {
    /// Events of one kind.
    pub fn events_of(&self, kind: EventKind) -> impl Iterator<Item = &Event> {
        self.events.iter().filter(move |e| e.kind == kind)
    }

    /// Did the track contain at least one split?
    pub fn has_split(&self) -> bool {
        self.events_of(EventKind::Split).next().is_some()
    }
}

/// Analyze a per-frame mask sequence (e.g. the output of
/// [`crate::region_grow::grow_4d`]) into components and events.
pub fn track_events(masks: &[Mask3]) -> TrackReport {
    assert!(!masks.is_empty());
    let labelings: Vec<ComponentLabels> = masks
        .iter()
        .map(|m| ComponentLabels::label(m, Connectivity::TwentySix))
        .collect();

    let mut events = Vec::new();
    for fi in 0..labelings.len() - 1 {
        events.extend(transition_events(fi, &labelings[fi], &labelings[fi + 1]));
    }

    TrackReport {
        components_per_frame: labelings.iter().map(|l| l.count()).collect(),
        voxels_per_frame: masks.iter().map(|m| m.count()).collect(),
        events,
    }
}

/// Overlap matrix between two labelings: `overlaps[a-1][b-1]` counts voxels
/// in component `a` of the first frame AND component `b` of the second.
fn overlap_matrix(a: &ComponentLabels, b: &ComponentLabels) -> Vec<Vec<usize>> {
    let mut m = vec![vec![0usize; b.count() as usize]; a.count() as usize];
    let d = a.dims();
    for z in 0..d.nz {
        for y in 0..d.ny {
            for x in 0..d.nx {
                let la = a.label_at(x, y, z);
                let lb = b.label_at(x, y, z);
                if la != 0 && lb != 0 {
                    m[(la - 1) as usize][(lb - 1) as usize] += 1;
                }
            }
        }
    }
    m
}

fn transition_events(fi: usize, a: &ComponentLabels, b: &ComponentLabels) -> Vec<Event> {
    let m = overlap_matrix(a, b);
    let na = a.count() as usize;
    let nb = b.count() as usize;
    let mut events = Vec::new();

    // Successors of each `a` component / predecessors of each `b` component.
    let succ: Vec<Vec<u32>> = (0..na)
        .map(|i| {
            (0..nb)
                .filter(|&j| m[i][j] > 0)
                .map(|j| j as u32 + 1)
                .collect()
        })
        .collect();
    let pred: Vec<Vec<u32>> = (0..nb)
        .map(|j| {
            (0..na)
                .filter(|&i| m[i][j] > 0)
                .map(|i| i as u32 + 1)
                .collect()
        })
        .collect();

    for (i, s) in succ.iter().enumerate() {
        let label = i as u32 + 1;
        match s.len() {
            0 => events.push(Event {
                frame: fi,
                kind: EventKind::Death,
                before: vec![label],
                after: vec![],
            }),
            1 => {
                // Only a continuation if the successor isn't a merge target.
                let j = (s[0] - 1) as usize;
                if pred[j].len() == 1 {
                    events.push(Event {
                        frame: fi,
                        kind: EventKind::Continuation,
                        before: vec![label],
                        after: vec![s[0]],
                    });
                }
            }
            _ => events.push(Event {
                frame: fi,
                kind: EventKind::Split,
                before: vec![label],
                after: s.clone(),
            }),
        }
    }

    for (j, p) in pred.iter().enumerate() {
        let label = j as u32 + 1;
        match p.len() {
            0 => events.push(Event {
                frame: fi,
                kind: EventKind::Birth,
                before: vec![],
                after: vec![label],
            }),
            1 => {}
            _ => events.push(Event {
                frame: fi,
                kind: EventKind::Merge,
                before: p.clone(),
                after: vec![label],
            }),
        }
    }

    events
}

#[cfg(test)]
mod tests {
    use super::*;
    use ifet_volume::Dims3;

    fn ball(d: Dims3, c: (f32, f32, f32), r: f32) -> Mask3 {
        Mask3::from_fn(d, |x, y, z| {
            ((x as f32 - c.0).powi(2) + (y as f32 - c.1).powi(2) + (z as f32 - c.2).powi(2)).sqrt()
                <= r
        })
    }

    #[test]
    fn continuation_detected() {
        let d = Dims3::cube(16);
        let masks = vec![
            ball(d, (6.0, 8.0, 8.0), 3.0),
            ball(d, (8.0, 8.0, 8.0), 3.0), // overlapping move
        ];
        let r = track_events(&masks);
        assert_eq!(r.components_per_frame, vec![1, 1]);
        assert_eq!(r.events.len(), 1);
        assert_eq!(r.events[0].kind, EventKind::Continuation);
    }

    #[test]
    fn split_detected() {
        let d = Dims3::cube(20);
        let mut both = ball(d, (4.0, 10.0, 10.0), 2.5);
        both.union_with(&ball(d, (15.0, 10.0, 10.0), 2.5));
        let masks = vec![
            ball(d, (9.5, 10.0, 10.0), 5.0), // one blob covering both
            both,                            // two blobs
        ];
        let r = track_events(&masks);
        assert_eq!(r.components_per_frame, vec![1, 2]);
        assert!(r.has_split());
        let split = r.events_of(EventKind::Split).next().unwrap();
        assert_eq!(split.after.len(), 2);
    }

    #[test]
    fn merge_detected() {
        let d = Dims3::cube(20);
        let mut both = ball(d, (4.0, 10.0, 10.0), 2.5);
        both.union_with(&ball(d, (15.0, 10.0, 10.0), 2.5));
        let masks = vec![both, ball(d, (9.5, 10.0, 10.0), 5.0)];
        let r = track_events(&masks);
        let merges: Vec<_> = r.events_of(EventKind::Merge).collect();
        assert_eq!(merges.len(), 1);
        assert_eq!(merges[0].before.len(), 2);
    }

    #[test]
    fn birth_and_death_detected() {
        let d = Dims3::cube(16);
        let masks = vec![
            ball(d, (4.0, 4.0, 4.0), 2.0),
            ball(d, (12.0, 12.0, 12.0), 2.0), // disjoint: old dies, new born
        ];
        let r = track_events(&masks);
        assert!(r.events_of(EventKind::Death).next().is_some());
        assert!(r.events_of(EventKind::Birth).next().is_some());
        assert!(r.events_of(EventKind::Continuation).next().is_none());
    }

    #[test]
    fn empty_frames_yield_no_events() {
        let d = Dims3::cube(8);
        let masks = vec![Mask3::empty(d), Mask3::empty(d)];
        let r = track_events(&masks);
        assert!(r.events.is_empty());
        assert_eq!(r.components_per_frame, vec![0, 0]);
    }

    #[test]
    fn single_frame_report() {
        let d = Dims3::cube(8);
        let r = track_events(&[ball(d, (4.0, 4.0, 4.0), 2.0)]);
        assert!(r.events.is_empty());
        assert_eq!(r.components_per_frame, vec![1]);
        assert_eq!(r.voxels_per_frame.len(), 1);
    }

    #[test]
    fn three_frame_split_story() {
        // One blob → still one → two: the Figure 9 storyline
        // ("splits near the end").
        let d = Dims3::cube(20);
        let mut both = ball(d, (5.0, 10.0, 10.0), 2.5);
        both.union_with(&ball(d, (14.0, 10.0, 10.0), 2.5));
        let masks = vec![
            ball(d, (9.5, 10.0, 10.0), 5.0),
            ball(d, (9.5, 10.0, 10.0), 5.5),
            both,
        ];
        let r = track_events(&masks);
        assert_eq!(r.components_per_frame, vec![1, 1, 2]);
        let split = r.events_of(EventKind::Split).next().unwrap();
        assert_eq!(split.frame, 1);
    }
}
