//! Per-feature attribute measurement.
//!
//! Reinders et al. (cited in Section 2) track features through "basic
//! attributes"; we compute the standard set for each connected component so
//! tracks can be summarized and verified quantitatively.

#![allow(clippy::needless_range_loop)] // indexing fixed-size [f64; 3] axes
use crate::components::ComponentLabels;
use ifet_volume::ScalarVolume;
use serde::{Deserialize, Serialize};

/// Measured attributes of one feature (connected component).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FeatureAttributes {
    /// Component label this was measured from.
    pub label: u32,
    /// Voxel count.
    pub volume: usize,
    /// Sum of scalar values over the feature.
    pub mass: f64,
    /// Value-weighted centroid (falls back to geometric when mass ~ 0).
    pub centroid: [f64; 3],
    /// Inclusive bounding box `(min, max)` corners.
    pub bbox: ([usize; 3], [usize; 3]),
}

impl FeatureAttributes {
    /// Measure every component of a labeling against the underlying data.
    /// Returns attributes indexed by label - 1.
    pub fn measure_all(labels: &ComponentLabels, data: &ScalarVolume) -> Vec<FeatureAttributes> {
        assert_eq!(labels.dims(), data.dims());
        let n = labels.count() as usize;
        let mut out: Vec<FeatureAttributes> = (0..n)
            .map(|i| FeatureAttributes {
                label: i as u32 + 1,
                volume: 0,
                mass: 0.0,
                centroid: [0.0; 3],
                bbox: ([usize::MAX; 3], [0; 3]),
            })
            .collect();
        let mut weighted: Vec<[f64; 3]> = vec![[0.0; 3]; n];
        let mut unweighted: Vec<[f64; 3]> = vec![[0.0; 3]; n];

        let d = labels.dims();
        for z in 0..d.nz {
            for y in 0..d.ny {
                for x in 0..d.nx {
                    let l = labels.label_at(x, y, z);
                    if l == 0 {
                        continue;
                    }
                    let a = &mut out[(l - 1) as usize];
                    let v = *data.get(x, y, z) as f64;
                    a.volume += 1;
                    a.mass += v;
                    let c = [x, y, z];
                    for k in 0..3 {
                        weighted[(l - 1) as usize][k] += v * c[k] as f64;
                        unweighted[(l - 1) as usize][k] += c[k] as f64;
                        a.bbox.0[k] = a.bbox.0[k].min(c[k]);
                        a.bbox.1[k] = a.bbox.1[k].max(c[k]);
                    }
                }
            }
        }

        for (i, a) in out.iter_mut().enumerate() {
            if a.mass.abs() > 1e-9 {
                for k in 0..3 {
                    a.centroid[k] = weighted[i][k] / a.mass;
                }
            } else if a.volume > 0 {
                for k in 0..3 {
                    a.centroid[k] = unweighted[i][k] / a.volume as f64;
                }
            }
        }
        out
    }

    /// Extent of the bounding box along each axis (inclusive voxel counts).
    pub fn bbox_extent(&self) -> [usize; 3] {
        [
            self.bbox.1[0] - self.bbox.0[0] + 1,
            self.bbox.1[1] - self.bbox.0[1] + 1,
            self.bbox.1[2] - self.bbox.0[2] + 1,
        ]
    }

    /// Euclidean distance between this feature's centroid and another's —
    /// the per-step travel used in track summaries.
    pub fn centroid_distance(&self, other: &FeatureAttributes) -> f64 {
        self.centroid
            .iter()
            .zip(&other.centroid)
            .map(|(a, b)| (a - b) * (a - b))
            .sum::<f64>()
            .sqrt()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::components::{ComponentLabels, Connectivity};
    use ifet_volume::{Dims3, Mask3};

    fn bar_scene() -> (ComponentLabels, ScalarVolume) {
        let d = Dims3::cube(8);
        let mut m = Mask3::empty(d);
        for x in 2..6 {
            m.set(x, 3, 3, true);
        }
        let data = ScalarVolume::from_fn(d, |x, _, _| x as f32);
        (ComponentLabels::label(&m, Connectivity::Six), data)
    }

    #[test]
    fn measures_volume_and_mass() {
        let (l, data) = bar_scene();
        let attrs = FeatureAttributes::measure_all(&l, &data);
        assert_eq!(attrs.len(), 1);
        let a = &attrs[0];
        assert_eq!(a.volume, 4);
        assert_eq!(a.mass, (2 + 3 + 4 + 5) as f64);
    }

    #[test]
    fn weighted_centroid_leans_toward_heavy_end() {
        let (l, data) = bar_scene();
        let a = &FeatureAttributes::measure_all(&l, &data)[0];
        // Geometric center of x = 2..=5 is 3.5; mass grows with x, so the
        // weighted centroid is to the right of it.
        assert!(a.centroid[0] > 3.5);
        assert_eq!(a.centroid[1], 3.0);
    }

    #[test]
    fn bbox_is_tight() {
        let (l, data) = bar_scene();
        let a = &FeatureAttributes::measure_all(&l, &data)[0];
        assert_eq!(a.bbox, ([2, 3, 3], [5, 3, 3]));
        assert_eq!(a.bbox_extent(), [4, 1, 1]);
    }

    #[test]
    fn zero_mass_falls_back_to_geometric_centroid() {
        let d = Dims3::cube(5);
        let mut m = Mask3::empty(d);
        m.set(1, 1, 1, true);
        m.set(3, 1, 1, true);
        m.set(2, 1, 1, true);
        let l = ComponentLabels::label(&m, Connectivity::Six);
        let data = ScalarVolume::zeros(d);
        let a = &FeatureAttributes::measure_all(&l, &data)[0];
        assert_eq!(a.centroid, [2.0, 1.0, 1.0]);
    }

    #[test]
    fn centroid_distance() {
        let (l, data) = bar_scene();
        let a = FeatureAttributes::measure_all(&l, &data)[0].clone();
        let mut b = a.clone();
        b.centroid = [a.centroid[0] + 3.0, a.centroid[1] + 4.0, a.centroid[2]];
        assert!((a.centroid_distance(&b) - 5.0).abs() < 1e-9);
    }

    #[test]
    fn multiple_components_measured_independently() {
        let d = Dims3::cube(8);
        let mut m = Mask3::empty(d);
        m.set(0, 0, 0, true);
        m.set(7, 7, 7, true);
        let l = ComponentLabels::label(&m, Connectivity::Six);
        let data = ScalarVolume::filled(d, 2.0);
        let attrs = FeatureAttributes::measure_all(&l, &data);
        assert_eq!(attrs.len(), 2);
        for a in &attrs {
            assert_eq!(a.volume, 1);
            assert_eq!(a.mass, 2.0);
        }
    }
}
