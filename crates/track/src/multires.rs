//! Multiresolution 4D region growing.
//!
//! Chen et al.'s "feature tree" (cited in Section 2) lets tracking "work
//! between refinement levels"; Silver & Wang's octrees reduce data during
//! tracking. In the same spirit, this module tracks at a downsampled level
//! first, then refines at full resolution *only inside the dilated coarse
//! result* — the criterion is evaluated on a small fraction of the volume
//! when the feature is compact.
//!
//! The refinement is conservative in the common case (features thicker than
//! the downsample factor) but is an approximation: structures thinner than a
//! coarse cell can be missed at the coarse level. `grow_4d_multires` is
//! therefore an *accelerator* whose agreement with the exact
//! [`crate::region_grow::grow_4d`] is a measurable property (see tests and
//! the `multires` bench), not a silent replacement.

use crate::criterion::GrowthCriterion;
use crate::region_grow::{GrowError, Seed4};
use ifet_volume::filter::downsample;
use ifet_volume::{map_frames_windowed, Dims3, FrameSource, Mask3, TimeSeries};
use std::collections::VecDeque;

/// Upsample a coarse mask by `factor`, then dilate it `dilate` times —
/// the fine-level candidate region.
pub fn upsample_mask(coarse: &Mask3, fine_dims: Dims3, factor: usize, dilate: usize) -> Mask3 {
    let mut fine = Mask3::from_fn(fine_dims, |x, y, z| {
        let (cx, cy, cz) = (x / factor, y / factor, z / factor);
        let d = coarse.dims();
        let cx = cx.min(d.nx - 1);
        let cy = cy.min(d.ny - 1);
        let cz = cz.min(d.nz - 1);
        coarse.get(cx, cy, cz)
    });
    for _ in 0..dilate {
        fine = fine.dilate6();
    }
    fine
}

/// Track through `series` under `criterion`, accelerated by a coarse pass at
/// `1/factor` resolution. `seeds` are fine-level coordinates.
///
/// Fine-level growth is restricted to the upsampled, dilated coarse track,
/// which bounds the number of criterion evaluations by
/// `O(|coarse track| * factor³)` instead of `O(volume)`.
pub fn grow_4d_multires<S: FrameSource + ?Sized>(
    series: &S,
    criterion: &dyn GrowthCriterion,
    seeds: &[Seed4],
    factor: usize,
) -> Result<Vec<Mask3>, GrowError> {
    assert!(factor >= 1);
    crate::region_grow::validate(series, criterion, seeds)?;
    let fine_dims = series.dims();
    if factor == 1 {
        return crate::region_grow::grow_4d(series, criterion, seeds);
    }

    // 1. Coarse pass: downsampled frames, same criterion (the criterion sees
    //    block-averaged values; bands survive averaging for compact features).
    //    The coarse series is factor³ smaller than the data, so it is kept in
    //    core even when the source is paged.
    let coarse_series = TimeSeries::from_frames(map_frames_windowed(series, |_, t, f| {
        (t, downsample(f, factor))
    })?);
    let coarse_seeds: Vec<Seed4> = seeds
        .iter()
        .map(|&(fi, x, y, z)| {
            let d = coarse_series.dims();
            (
                fi,
                (x / factor).min(d.nx - 1),
                (y / factor).min(d.ny - 1),
                (z / factor).min(d.nz - 1),
            )
        })
        .collect();
    let coarse = crate::region_grow::grow_4d(&coarse_series, criterion, &coarse_seeds)?;

    // 2. Fine pass restricted to the candidate region (coarse result
    //    upsampled and dilated by one coarse cell to recover boundary loss).
    let candidates: Vec<Mask3> = coarse
        .iter()
        .map(|c| upsample_mask(c, fine_dims, factor, factor))
        .collect();

    let n_frames = series.len();
    let mut masks: Vec<Mask3> = (0..n_frames).map(|_| Mask3::empty(fine_dims)).collect();
    let mut queue: VecDeque<Seed4> = VecDeque::new();
    for &(fi, x, y, z) in seeds {
        if masks[fi].get(x, y, z) || !candidates[fi].get(x, y, z) {
            continue;
        }
        let frame = series.frame(fi)?;
        if criterion.accept(fi, &frame, x, y, z) {
            masks[fi].set(x, y, z, true);
            queue.push_back((fi, x, y, z));
        }
    }
    while let Some((fi, x, y, z)) = queue.pop_front() {
        let frame = series.frame(fi)?;
        for (nx, ny, nz) in fine_dims.neighbors6(x, y, z) {
            if !masks[fi].get(nx, ny, nz)
                && candidates[fi].get(nx, ny, nz)
                && criterion.accept(fi, &frame, nx, ny, nz)
            {
                masks[fi].set(nx, ny, nz, true);
                queue.push_back((fi, nx, ny, nz));
            }
        }
        drop(frame);
        for nf in [fi.wrapping_sub(1), fi + 1] {
            if nf >= n_frames {
                continue;
            }
            if masks[nf].get(x, y, z) || !candidates[nf].get(x, y, z) {
                continue;
            }
            let nframe = series.frame(nf)?;
            if criterion.accept(nf, &nframe, x, y, z) {
                masks[nf].set(x, y, z, true);
                queue.push_back((nf, x, y, z));
            }
        }
    }
    Ok(masks)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::criterion::FixedBandCriterion;
    use crate::region_grow::grow_4d;
    use ifet_volume::ScalarVolume;

    /// A bright moving ball series (compact feature, thicker than any
    /// reasonable downsample factor).
    fn ball_series(n: usize) -> TimeSeries {
        let d = Dims3::cube(n);
        TimeSeries::from_frames(
            (0..4u32)
                .map(|t| {
                    let cx = n as f32 * 0.3 + 1.5 * t as f32;
                    let vol = ScalarVolume::from_fn(d, move |x, y, z| {
                        let dist = ((x as f32 - cx).powi(2)
                            + (y as f32 - n as f32 / 2.0).powi(2)
                            + (z as f32 - n as f32 / 2.0).powi(2))
                        .sqrt();
                        if dist <= n as f32 * 0.18 {
                            1.0
                        } else {
                            0.0
                        }
                    });
                    (t, vol)
                })
                .collect(),
        )
    }

    #[test]
    fn upsample_mask_covers_block() {
        let coarse = Mask3::from_fn(Dims3::cube(2), |x, _, _| x == 1);
        let fine = upsample_mask(&coarse, Dims3::cube(4), 2, 0);
        assert_eq!(fine.count(), 2 * 2 * 2 * 4); // the x >= 2 half
        assert!(fine.get(2, 0, 0) && fine.get(3, 3, 3));
        assert!(!fine.get(1, 0, 0));
    }

    #[test]
    fn factor_one_is_exact() {
        let s = ball_series(16);
        let c = FixedBandCriterion::new(0.5, 2.0, s.len()).unwrap();
        let seed = [(0usize, 5usize, 8usize, 8usize)];
        assert_eq!(
            grow_4d_multires(&s, &c, &seed, 1).unwrap(),
            grow_4d(&s, &c, &seed).unwrap()
        );
    }

    #[test]
    fn multires_matches_exact_on_compact_feature() {
        let s = ball_series(24);
        let c = FixedBandCriterion::new(0.5, 2.0, s.len()).unwrap();
        let seed = [(0usize, 7usize, 12usize, 12usize)];
        let exact = grow_4d(&s, &c, &seed).unwrap();
        let fast = grow_4d_multires(&s, &c, &seed, 2).unwrap();
        for (i, (a, b)) in exact.iter().zip(&fast).enumerate() {
            let agreement = a.jaccard(b);
            assert!(
                agreement > 0.98,
                "frame {i}: multires diverged, Jaccard {agreement}"
            );
        }
    }

    #[test]
    fn multires_result_is_subset_of_criterion() {
        let s = ball_series(24);
        let c = FixedBandCriterion::new(0.5, 2.0, s.len()).unwrap();
        let seed = [(0usize, 7usize, 12usize, 12usize)];
        let fast = grow_4d_multires(&s, &c, &seed, 3).unwrap();
        for (fi, m) in fast.iter().enumerate() {
            for (x, y, z) in m.set_coords() {
                assert!(c.accept(fi, s.frame(fi), x, y, z));
            }
        }
    }

    #[test]
    fn seed_outside_feature_grows_nothing() {
        let s = ball_series(16);
        let c = FixedBandCriterion::new(0.5, 2.0, s.len()).unwrap();
        let fast = grow_4d_multires(&s, &c, &[(0, 0, 0, 0)], 2).unwrap();
        assert!(fast.iter().all(|m| m.is_empty_mask()));
    }

    #[test]
    fn non_divisible_dims_handled() {
        // 23 is not divisible by 2: boundary coarse cells must still map.
        let s = ball_series(23);
        let c = FixedBandCriterion::new(0.5, 2.0, s.len()).unwrap();
        let seed = [(0usize, 7usize, 11usize, 11usize)];
        let fast = grow_4d_multires(&s, &c, &seed, 2).unwrap();
        assert!(fast[0].count() > 0);
    }
}
