//! Property-based tests for tracking invariants.

use ifet_track::components::{ComponentLabels, Connectivity};
use ifet_track::criterion::{FixedBandCriterion, MaskCriterion};
use ifet_track::region_grow::{grow_4d, grow_4d_serial};
use ifet_track::FeatureOctree;
use ifet_volume::{Dims3, Mask3, ScalarVolume, TimeSeries};
use proptest::prelude::*;

fn dims_strategy() -> impl Strategy<Value = Dims3> {
    (2usize..7, 2usize..7, 2usize..7).prop_map(|(x, y, z)| Dims3::new(x, y, z))
}

fn mask_strategy() -> impl Strategy<Value = Mask3> {
    dims_strategy().prop_flat_map(|d| {
        proptest::collection::vec(any::<bool>(), d.len()).prop_map(move |bits| {
            let mut m = Mask3::empty(d);
            for (i, b) in bits.into_iter().enumerate() {
                m.set_linear(i, b);
            }
            m
        })
    })
}

/// 2–4 frames of random masks over one shared (small) grid — a random 4D
/// acceptance set for grow equivalence tests.
fn multi_frame_masks_strategy() -> impl Strategy<Value = Vec<Mask3>> {
    (dims_strategy(), 2usize..5).prop_flat_map(|(d, n)| {
        proptest::collection::vec(
            proptest::collection::vec(any::<bool>(), d.len()).prop_map(move |bits| {
                let mut m = Mask3::empty(d);
                for (i, b) in bits.into_iter().enumerate() {
                    m.set_linear(i, b);
                }
                m
            }),
            n,
        )
    })
}

proptest! {
    #[test]
    fn octree_roundtrip_any_mask(m in mask_strategy()) {
        let tree = FeatureOctree::from_mask(&m);
        prop_assert_eq!(tree.to_mask(), m.clone());
        prop_assert_eq!(tree.voxel_count(), m.count());
    }

    #[test]
    fn component_sizes_partition_mask(m in mask_strategy()) {
        let l = ComponentLabels::label(&m, Connectivity::Six);
        let sizes = l.sizes();
        prop_assert_eq!(sizes.iter().sum::<usize>(), m.count());
        // Each component's mask is non-empty and labelled consistently.
        for label in 1..=l.count() {
            let cm = l.component_mask(label);
            prop_assert_eq!(cm.count(), sizes[label as usize]);
            prop_assert!(cm.count() > 0);
        }
    }

    #[test]
    fn connectivity26_never_more_components(m in mask_strategy()) {
        let six = ComponentLabels::label(&m, Connectivity::Six).count();
        let tsix = ComponentLabels::label(&m, Connectivity::TwentySix).count();
        prop_assert!(tsix <= six);
    }

    #[test]
    fn filter_small_is_subset_and_monotone(m in mask_strategy(), k in 1usize..5) {
        let l = ComponentLabels::label(&m, Connectivity::Six);
        let big = l.filter_small(k);
        let bigger = l.filter_small(k + 1);
        // Filtered result is a subset of the mask; higher threshold removes more.
        prop_assert_eq!(big.intersection_count(&m), big.count());
        prop_assert!(bigger.count() <= big.count());
    }

    #[test]
    fn region_grow_result_is_subset_of_criterion(m in mask_strategy(), seed_frac in 0.0f64..1.0) {
        let d = m.dims();
        let series = TimeSeries::from_frames(vec![(0, ScalarVolume::zeros(d))]);
        let criterion = MaskCriterion::new(vec![m.clone()]).unwrap();
        let idx = ((d.len() - 1) as f64 * seed_frac) as usize;
        let (x, y, z) = d.coords(idx);
        let grown = grow_4d(&series, &criterion, &[(0, x, y, z)]).unwrap();
        // Whatever grew is inside the allowed mask.
        prop_assert_eq!(grown[0].intersection_count(&m), grown[0].count());
        // And if the seed was allowed, it is in the result, which is exactly
        // the seed's connected component.
        if m.get(x, y, z) {
            prop_assert!(grown[0].get(x, y, z));
            let l = ComponentLabels::label(&m, Connectivity::Six);
            let comp = l.component_mask(l.label_at(x, y, z));
            prop_assert_eq!(&grown[0], &comp);
        } else {
            prop_assert!(grown[0].is_empty_mask());
        }
    }

    #[test]
    fn parallel_grow_matches_serial_on_random_masks(
        masks in multi_frame_masks_strategy(),
        seed_fracs in proptest::collection::vec((0.0f64..1.0, 0.0f64..1.0), 1..4),
    ) {
        // The tentpole contract: the frontier-parallel grower must be
        // bit-identical to the serial BFS on arbitrary series/criteria/seeds.
        let d = masks[0].dims();
        let n = masks.len();
        let series = TimeSeries::from_frames(
            (0..n).map(|k| (k as u32, ScalarVolume::zeros(d))).collect(),
        );
        let criterion = MaskCriterion::new(masks).unwrap();
        let seeds: Vec<_> = seed_fracs
            .iter()
            .map(|&(ff, vf)| {
                let fi = ((n - 1) as f64 * ff) as usize;
                let (x, y, z) = d.coords(((d.len() - 1) as f64 * vf) as usize);
                (fi, x, y, z)
            })
            .collect();
        let par = grow_4d(&series, &criterion, &seeds).unwrap();
        let ser = grow_4d_serial(&series, &criterion, &seeds).unwrap();
        prop_assert_eq!(par, ser);
    }

    #[test]
    fn parallel_grow_matches_serial_with_value_band(
        frames in proptest::collection::vec(
            proptest::collection::vec(0.0f32..1.0, 64), 2..5),
        lo in 0.0f32..0.6, width in 0.1f32..0.6,
    ) {
        // Same contract under a value-band criterion over random scalar data
        // (exercises `precompute_frame` against per-voxel `accept`).
        let d = Dims3::cube(4);
        let n = frames.len();
        let series = TimeSeries::from_frames(
            frames
                .into_iter()
                .enumerate()
                .map(|(k, data)| (k as u32, ScalarVolume::from_vec(d, data)))
                .collect(),
        );
        let criterion = FixedBandCriterion::new(lo, lo + width, n).unwrap();
        let seeds = [(0usize, 1usize, 2usize, 3usize), (n - 1, 0, 0, 0)];
        let par = grow_4d(&series, &criterion, &seeds).unwrap();
        let ser = grow_4d_serial(&series, &criterion, &seeds).unwrap();
        prop_assert_eq!(par, ser);
    }

    #[test]
    fn more_seeds_grow_at_least_as_much(m in mask_strategy()) {
        let d = m.dims();
        let series = TimeSeries::from_frames(vec![(0, ScalarVolume::zeros(d))]);
        let criterion = MaskCriterion::new(vec![m.clone()]).unwrap();
        let one_seed = grow_4d(&series, &criterion, &[(0, 0, 0, 0)]).unwrap();
        let all_seeds: Vec<_> = (0..d.len())
            .map(|i| {
                let (x, y, z) = d.coords(i);
                (0usize, x, y, z)
            })
            .collect();
        let full = grow_4d(&series, &criterion, &all_seeds).unwrap();
        prop_assert!(full[0].count() >= one_seed[0].count());
        // Seeding everywhere recovers the entire criterion mask.
        prop_assert_eq!(&full[0], &m);
    }
}
