//! Property-based tests for tracking invariants.

use ifet_track::components::{ComponentLabels, Connectivity};
use ifet_track::criterion::MaskCriterion;
use ifet_track::region_grow::grow_4d;
use ifet_track::FeatureOctree;
use ifet_volume::{Dims3, Mask3, ScalarVolume, TimeSeries};
use proptest::prelude::*;

fn dims_strategy() -> impl Strategy<Value = Dims3> {
    (2usize..7, 2usize..7, 2usize..7).prop_map(|(x, y, z)| Dims3::new(x, y, z))
}

fn mask_strategy() -> impl Strategy<Value = Mask3> {
    dims_strategy().prop_flat_map(|d| {
        proptest::collection::vec(any::<bool>(), d.len()).prop_map(move |bits| {
            let mut m = Mask3::empty(d);
            for (i, b) in bits.into_iter().enumerate() {
                m.set_linear(i, b);
            }
            m
        })
    })
}

proptest! {
    #[test]
    fn octree_roundtrip_any_mask(m in mask_strategy()) {
        let tree = FeatureOctree::from_mask(&m);
        prop_assert_eq!(tree.to_mask(), m.clone());
        prop_assert_eq!(tree.voxel_count(), m.count());
    }

    #[test]
    fn component_sizes_partition_mask(m in mask_strategy()) {
        let l = ComponentLabels::label(&m, Connectivity::Six);
        let sizes = l.sizes();
        prop_assert_eq!(sizes.iter().sum::<usize>(), m.count());
        // Each component's mask is non-empty and labelled consistently.
        for label in 1..=l.count() {
            let cm = l.component_mask(label);
            prop_assert_eq!(cm.count(), sizes[label as usize]);
            prop_assert!(cm.count() > 0);
        }
    }

    #[test]
    fn connectivity26_never_more_components(m in mask_strategy()) {
        let six = ComponentLabels::label(&m, Connectivity::Six).count();
        let tsix = ComponentLabels::label(&m, Connectivity::TwentySix).count();
        prop_assert!(tsix <= six);
    }

    #[test]
    fn filter_small_is_subset_and_monotone(m in mask_strategy(), k in 1usize..5) {
        let l = ComponentLabels::label(&m, Connectivity::Six);
        let big = l.filter_small(k);
        let bigger = l.filter_small(k + 1);
        // Filtered result is a subset of the mask; higher threshold removes more.
        prop_assert_eq!(big.intersection_count(&m), big.count());
        prop_assert!(bigger.count() <= big.count());
    }

    #[test]
    fn region_grow_result_is_subset_of_criterion(m in mask_strategy(), seed_frac in 0.0f64..1.0) {
        let d = m.dims();
        let series = TimeSeries::from_frames(vec![(0, ScalarVolume::zeros(d))]);
        let criterion = MaskCriterion::new(vec![m.clone()]);
        let idx = ((d.len() - 1) as f64 * seed_frac) as usize;
        let (x, y, z) = d.coords(idx);
        let grown = grow_4d(&series, &criterion, &[(0, x, y, z)]);
        // Whatever grew is inside the allowed mask.
        prop_assert_eq!(grown[0].intersection_count(&m), grown[0].count());
        // And if the seed was allowed, it is in the result, which is exactly
        // the seed's connected component.
        if m.get(x, y, z) {
            prop_assert!(grown[0].get(x, y, z));
            let l = ComponentLabels::label(&m, Connectivity::Six);
            let comp = l.component_mask(l.label_at(x, y, z));
            prop_assert_eq!(&grown[0], &comp);
        } else {
            prop_assert!(grown[0].is_empty_mask());
        }
    }

    #[test]
    fn more_seeds_grow_at_least_as_much(m in mask_strategy()) {
        let d = m.dims();
        let series = TimeSeries::from_frames(vec![(0, ScalarVolume::zeros(d))]);
        let criterion = MaskCriterion::new(vec![m.clone()]);
        let one_seed = grow_4d(&series, &criterion, &[(0, 0, 0, 0)]);
        let all_seeds: Vec<_> = (0..d.len())
            .map(|i| {
                let (x, y, z) = d.coords(i);
                (0usize, x, y, z)
            })
            .collect();
        let full = grow_4d(&series, &criterion, &all_seeds);
        prop_assert!(full[0].count() >= one_seed[0].count());
        // Seeding everywhere recovers the entire criterion mask.
        prop_assert_eq!(&full[0], &m);
    }
}
