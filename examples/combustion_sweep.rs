//! The DNS combustion workflow (paper Figure 5): the vorticity magnitude's
//! value range grows so strongly over time that each key-frame transfer
//! function only works near its own key frame — while the IATF follows the
//! feature across the whole sequence.
//!
//! Run with: `cargo run --release --example combustion_sweep`

use ifet_core::prelude::*;
use ifet_sim::combustion_jet::top_fraction_mask;

fn main() {
    let data = ifet_sim::combustion_jet(Dims3::new(48, 72, 24), 5);
    let mut session = VisSession::new(data.series.clone()).unwrap();
    let (glo, ghi) = session.series().global_range();
    let steps: Vec<u32> = data.series.steps().to_vec();

    // Key frames at the first, middle, and last steps: each captures the top
    // 5% of that frame's own vorticity distribution.
    let key_steps = [steps[0], steps[steps.len() / 2], steps[steps.len() - 1]];
    let mut key_tfs = Vec::new();
    for &t in &key_steps {
        let frame = data.series.frame_at_step(t).unwrap();
        let mask = top_fraction_mask(frame, 0.05);
        // The band the user would set: from the mask's lowest captured value up.
        let lo = frame
            .as_slice()
            .iter()
            .enumerate()
            .filter(|&(i, _)| mask.get_linear(i))
            .map(|(_, &v)| v)
            .fold(f32::INFINITY, f32::min);
        let tf = TransferFunction1D::band(glo, ghi, lo, ghi, 1.0);
        session.add_key_frame(t, tf.clone());
        key_tfs.push((t, tf));
    }

    session.train_iatf(IatfParams::default());

    // The Figure 5 matrix: rows = methods, columns = evaluated time steps.
    print!("{:<18}", "method \\ step");
    for &t in &steps {
        print!("{t:>8}");
    }
    println!();
    for (kt, tf) in &key_tfs {
        print!("{:<18}", format!("static TF(t={kt})"));
        for (i, &t) in steps.iter().enumerate() {
            let mask = session.extract_with_tf(t, tf, 0.5);
            print!("{:>8.3}", Scores::of(&mask, data.truth_frame(i)).f1);
        }
        println!();
    }
    print!("{:<18}", "IATF (ours)");
    for (i, &t) in steps.iter().enumerate() {
        let tf = session.adaptive_tf_at_step(t).unwrap();
        let mask = session.extract_with_tf(t, &tf, 0.5);
        print!("{:>8.3}", Scores::of(&mask, data.truth_frame(i)).f1);
    }
    println!();
    println!("\n(each static TF peaks near its own key frame; the IATF holds up everywhere)");
}
