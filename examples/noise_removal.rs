//! Data-space extraction: remove hundreds of small "noise" features whose
//! values overlap the large structures of interest — impossible for a 1D
//! transfer function, destructive for blurring, easy for the painted
//! shell-feature classifier (the paper's Figure 7 workflow).
//!
//! Run with: `cargo run --release --example noise_removal`

use ifet_core::prelude::*;
use ifet_extract::baselines;

fn main() {
    // The reionization analog: a few large wobbly structures + many small
    // blobs sharing the same value band.
    let data = ifet_sim::reionization(Dims3::cube(48), 3);
    let mut session = VisSession::new(data.series.clone()).unwrap();

    let t = 310;
    let fi = data.series.index_of_step(t).unwrap();
    let frame = data.series.frame_at_step(t).unwrap();
    let truth = data.truth_frame(fi);

    // The scientist paints ~200 voxels of the large structures (wanted) and
    // ~200 of the background/noise (unwanted) on a few slices.
    let mut oracle = PaintOracle::new(42);
    let paints = oracle.paint_from_truth(t, truth, 200, 200);
    session.add_paints(paints).unwrap();

    // Train the per-voxel classifier with shell-neighborhood features.
    let spec = FeatureSpec {
        shell_radius: 4.0,
        ..Default::default()
    };
    let clf = session
        .train_classifier(spec, ClassifierParams::default())
        .expect("training failed");
    println!("classifier trained, final loss = {:.5}", clf.final_loss());

    // Compare against the conventional baselines.
    let ours = session.extract_data_space(t, 0.5).unwrap();
    let (thr, _) = baselines::best_threshold_band(frame, truth, 64);
    let band = Mask3::threshold(frame, thr);
    let blurred = baselines::blur_then_band_mask(frame, 1.2, 2, thr, f32::INFINITY);

    println!(
        "\n{:<22} {:>9} {:>9} {:>9} {:>9}",
        "method", "precision", "recall", "F1", "detail"
    );
    for (name, mask) in [
        ("1D transfer function", &band),
        ("repeated blurring", &blurred),
        ("learning-based (ours)", &ours),
    ] {
        let s = Scores::of(mask, truth);
        let detail = baselines::detail_score(mask, truth);
        println!(
            "{:<22} {:>9.3} {:>9.3} {:>9.3} {:>9.3}",
            name, s.precision, s.recall, s.f1, detail
        );
    }
}
