//! Quickstart: learn an adaptive transfer function from two painted key
//! frames and watch it follow a drifting feature that a static transfer
//! function loses.
//!
//! Run with: `cargo run --release --example quickstart`

use ifet_core::prelude::*;
use ifet_sim::shock_bubble::ring_value_band;

fn main() {
    // 1. A time-varying dataset: the argon-bubble analog. The "smoke ring"'s
    //    data values drift upward over time; ground-truth ring masks come
    //    with the generator so we can score every method.
    let data = ifet_sim::shock_bubble(Dims3::cube(48), 7);
    println!(
        "dataset: {} {} frames of {}",
        data.name,
        data.series.len(),
        data.series.dims()
    );

    let mut session = VisSession::new(data.series.clone()).unwrap();
    let (glo, ghi) = session.series().global_range();

    // 2. The "user" paints 1D transfer functions on the first and last key
    //    frames, capturing the ring's value band at those instants.
    let (b0, b1) = ring_value_band(0.0);
    let first_tf = TransferFunction1D::band(glo, ghi, b0, b1, 1.0);
    session.add_key_frame(195, first_tf.clone());
    let (b0, b1) = ring_value_band(1.0);
    session.add_key_frame(255, TransferFunction1D::band(glo, ghi, b0, b1, 1.0));

    // 3. Train the Intelligent Adaptive Transfer Function.
    let iatf = session.train_iatf(IatfParams::default());
    println!(
        "IATF trained, final loss = {:.5}",
        iatf.final_loss().unwrap()
    );

    // 4. Compare static vs adaptive extraction on every frame.
    println!("\n{:<6} {:>12} {:>12}", "step", "static-TF F1", "IATF F1");
    for (i, &t) in data.series.steps().to_vec().iter().enumerate() {
        let truth = data.truth_frame(i);
        let static_mask = session.extract_with_tf(t, &first_tf, 0.5);
        let adaptive_tf = session.adaptive_tf_at_step(t).unwrap();
        let adaptive_mask = session.extract_with_tf(t, &adaptive_tf, 0.5);
        println!(
            "{:<6} {:>12.3} {:>12.3}",
            t,
            Scores::of(&static_mask, truth).f1,
            Scores::of(&adaptive_mask, truth).f1
        );
    }

    // 5. Render the middle frame with the adaptive TF.
    let img = session.render_adaptive(225, 256, 256).unwrap();
    let path = std::env::temp_dir().join("ifet_quickstart.ppm");
    img.save_ppm(&path).expect("failed to write image");
    println!("\nrendered middle frame -> {}", path.display());
}
