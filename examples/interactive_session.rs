//! The interactive workflow, headless (paper Sections 4.2.2 and 6):
//! idle-loop incremental training with intermediate feedback, network
//! introspection ("opening the black box"), dropping an unimportant input
//! property, and comparing the neural network with the SVM alternative.
//!
//! Run with: `cargo run --release --example interactive_session`

use ifet_core::prelude::*;
use ifet_nn::introspect;
use ifet_nn::SvmParams;
use ifet_sim::shock_bubble::ring_value_band;
use ifet_tf::IatfBuilder;

fn main() {
    let data = ifet_sim::shock_bubble(Dims3::cube(40), 21);
    let series = &data.series;
    let (glo, ghi) = series.global_range();

    // ---- 1. Idle-loop IATF training with live feedback -------------------
    // The user sets one key frame, the system trains in bursts between
    // interactions, and the rendered feedback improves as training proceeds.
    let mut builder = IatfBuilder::new(IatfParams::default());
    let (lo, hi) = ring_value_band(0.0);
    builder.add_key_frame(195, TransferFunction1D::band(glo, ghi, lo, hi, 1.0));
    let (lo, hi) = ring_value_band(1.0);
    builder.add_key_frame(255, TransferFunction1D::band(glo, ghi, lo, hi, 1.0));

    let mut trainer = builder.start_incremental(series);
    println!("idle-loop training (loss after each burst):");
    for burst in 1..=6 {
        let loss = trainer.step(100).unwrap();
        // Intermediate feedback: the user can look at the current TF at any
        // point while training continues.
        let snapshot = builder.finish(series, trainer.clone());
        let tf = snapshot.generate(225, series.frame_at_step(225).unwrap());
        let band = tf
            .support(0.5)
            .map(|(a, b)| format!("[{a:.2}, {b:.2}]"))
            .unwrap_or_else(|| "none yet".into());
        println!("  burst {burst}: loss {loss:.4}, current t=225 band {band}");
    }

    // ---- 2. Data-space training, then introspection ----------------------
    let session_series = series.clone();
    let mut session = VisSession::new(session_series).unwrap();
    let mut oracle = PaintOracle::new(3);
    let fi = 2; // paint on the middle frame
    let t_mid = series.steps()[fi];
    session
        .add_paints(oracle.paint_from_truth(t_mid, data.truth_frame(fi), 300, 300))
        .unwrap();
    // Deliberately include the (useless here) position features.
    let spec = FeatureSpec {
        position: true,
        shell_radius: 4.0,
        ..Default::default()
    };
    session
        .train_classifier(spec, ClassifierParams::default())
        .expect("training failed");
    let net = session.classifier().unwrap().network();

    println!("\ninput importance (connection weights):");
    let names = [
        "value",
        "shell mean",
        "shell min",
        "shell max",
        "shell std",
        "pos x",
        "pos y",
        "pos z",
        "time",
    ];
    for (idx, w) in introspect::rank_inputs(net) {
        println!("  {:<10} {:.3}", names[idx], w);
    }

    // Drop the least important input and verify behaviour is preserved
    // (Section 6: "the input data for the previous network would be
    // transferred to the new network").
    let (least, _) = *introspect::rank_inputs(net).last().unwrap();
    let smaller = introspect::drop_input(net, least);
    println!(
        "\ndropped input {:?}: network shrank {} -> {} weights",
        names[least],
        net.num_params(),
        smaller.num_params()
    );

    // ---- 3. NN vs SVM on the same paints ---------------------------------
    let mut oracle2 = PaintOracle::new(3);
    let paints = oracle2.paint_from_truth(t_mid, data.truth_frame(fi), 300, 300);
    let fx = FeatureExtractor::new(FeatureSpec {
        shell_radius: 4.0,
        ..Default::default()
    });
    let svm_clf = DataSpaceClassifier::train_svm(
        fx,
        series,
        &[paints],
        SvmParams {
            c: 10.0,
            kernel: ifet_nn::Kernel::Rbf { gamma: 4.0 },
            max_passes: 10,
            ..Default::default()
        },
    )
    .unwrap();
    let tn = series.normalized_time(t_mid);
    let nn_mask = session.extract_data_space(t_mid, 0.6).unwrap();
    let svm_mask = svm_clf.extract_mask(series.frame(fi), tn, 0.6);
    println!(
        "\nNN  extraction: {}",
        Scores::of(&nn_mask, data.truth_frame(fi))
    );
    println!(
        "SVM extraction: {}",
        Scores::of(&svm_mask, data.truth_frame(fi))
    );
    println!("(the paper's Section 8: SVMs also give promising results)");
}
