//! Feature tracking: follow a moving, deforming vortex through time with 4D
//! region growing, detect its split, and render the tracked feature in red
//! over the context volume (the paper's Figure 9 workflow).
//!
//! Run with: `cargo run --release --example ring_tracking`

use ifet_core::prelude::*;
use ifet_track::EventKind;

fn main() {
    // The turbulent-vortex dataset: one feature that moves, deforms, and
    // splits near the end of t = 50..74.
    let data = ifet_sim::turbulent_vortex(Dims3::cube(48), 11);
    let session = VisSession::new(data.series.clone()).unwrap();

    // Seed the tracker inside the feature at the first frame (in the UI the
    // user clicks the feature; here we take the ground-truth centroid).
    let truth0 = data.truth_frame(0);
    let (mut cx, mut cy, mut cz, mut n) = (0usize, 0usize, 0usize, 0usize);
    for (x, y, z) in truth0.set_coords() {
        cx += x;
        cy += y;
        cz += z;
        n += 1;
    }
    assert!(n > 0, "truth empty");
    let seeds: Vec<Seed4> = vec![(0, cx / n, cy / n, cz / n)];

    // Track with a value band criterion wide enough to follow the feature.
    let result = session
        .track_fixed(&seeds, 0.5, 2.0)
        .expect("tracking failed");

    println!("step   voxels  components");
    for (i, &t) in data.series.steps().iter().enumerate() {
        println!(
            "{:<6} {:>7} {:>10}",
            t, result.report.voxels_per_frame[i], result.report.components_per_frame[i]
        );
    }

    println!("\nevents:");
    for e in &result.report.events {
        let t = data.series.steps()[e.frame];
        println!("  t={t}: {:?} {:?} -> {:?}", e.kind, e.before, e.after);
    }
    if result.report.has_split() {
        let split = result.report.events_of(EventKind::Split).next().unwrap();
        println!(
            "\nthe tracked vortex SPLITS after step {}",
            data.series.steps()[split.frame]
        );
    }

    // Render the final frame with the tracked feature highlighted in red.
    let (glo, ghi) = session.series().global_range();
    let base_tf = TransferFunction1D::band(glo, ghi, 0.3, ghi, 0.08);
    let adaptive_tf = TransferFunction1D::band(glo, ghi, 0.5, ghi, 0.9);
    let last = *data.series.steps().last().unwrap();
    let img = session.render_tracked(
        last,
        result.masks.last().unwrap(),
        &base_tf,
        &adaptive_tf,
        256,
        256,
    );
    let path = std::env::temp_dir().join("ifet_tracking.ppm");
    img.save_ppm(&path).expect("failed to write image");
    println!("rendered tracked frame -> {}", path.display());
}
