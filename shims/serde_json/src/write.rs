//! JSON text output.

use serde::value::{Number, Value};

/// Compact encoding (no whitespace).
pub fn write_compact(v: &Value) -> String {
    let mut out = String::new();
    write_value(&mut out, v, None, 0);
    out
}

/// Two-space-indented encoding.
pub fn write_pretty(v: &Value) -> String {
    let mut out = String::new();
    write_value(&mut out, v, Some(2), 0);
    out
}

fn write_value(out: &mut String, v: &Value, indent: Option<usize>, level: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::Number(n) => write_number(out, n),
        Value::String(s) => write_string(out, s),
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, level + 1);
                write_value(out, item, indent, level + 1);
            }
            newline_indent(out, indent, level);
            out.push(']');
        }
        Value::Object(pairs) => {
            if pairs.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (k, val)) in pairs.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, level + 1);
                write_string(out, k);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, val, indent, level + 1);
            }
            newline_indent(out, indent, level);
            out.push('}');
        }
    }
}

fn newline_indent(out: &mut String, indent: Option<usize>, level: usize) {
    if let Some(width) = indent {
        out.push('\n');
        for _ in 0..width * level {
            out.push(' ');
        }
    }
}

fn write_number(out: &mut String, n: &Number) {
    use std::fmt::Write;
    match *n {
        Number::I(v) => {
            let _ = write!(out, "{v}");
        }
        Number::U(v) => {
            let _ = write!(out, "{v}");
        }
        Number::F(v) => {
            if v.is_finite() {
                // Rust's Display for f64 prints the shortest string that
                // round-trips, which is also valid JSON.
                let _ = write!(out, "{v}");
            } else {
                out.push_str("null");
            }
        }
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{8}' => out.push_str("\\b"),
            '\u{c}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                use std::fmt::Write;
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}
