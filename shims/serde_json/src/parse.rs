//! Recursive-descent JSON parser.

use crate::Error;
use serde::value::{Number, Value};

/// Parse a complete JSON document (trailing whitespace allowed, trailing
/// content rejected).
pub fn parse_value(input: &str) -> Result<Value, Error> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters after JSON value"));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, msg: impl Into<String>) -> Error {
        Error::Syntax {
            msg: msg.into(),
            offset: self.pos,
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(format!("expected `{}`", b as char)))
        }
    }

    fn literal(&mut self, word: &str, v: Value) -> Result<Value, Error> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(self.err(format!("invalid literal (expected `{word}`)")))
        }
    }

    fn value(&mut self) -> Result<Value, Error> {
        match self.peek() {
            Some(b'n') => self.literal("null", Value::Null),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'"') => self.string().map(Value::String),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            Some(c) => Err(self.err(format!("unexpected character `{}`", c as char))),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(self.err("expected `,` or `]` in array")),
            }
        }
    }

    fn object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let val = self.value()?;
            pairs.push((key, val));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(pairs));
                }
                _ => return Err(self.err("expected `,` or `}` in object")),
            }
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            self.pos += 1;
                            let cp = self.hex4()?;
                            let c = if (0xD800..0xDC00).contains(&cp) {
                                // High surrogate: require a following \uXXXX low half.
                                if self.peek() == Some(b'\\') {
                                    self.pos += 1;
                                    self.expect(b'u')?;
                                    let lo = self.hex4()?;
                                    if !(0xDC00..0xE000).contains(&lo) {
                                        return Err(self.err("invalid low surrogate"));
                                    }
                                    let combined = 0x10000 + ((cp - 0xD800) << 10) + (lo - 0xDC00);
                                    char::from_u32(combined)
                                        .ok_or_else(|| self.err("invalid surrogate pair"))?
                                } else {
                                    return Err(self.err("lone high surrogate"));
                                }
                            } else {
                                char::from_u32(cp)
                                    .ok_or_else(|| self.err("invalid unicode escape"))?
                            };
                            out.push(c);
                            continue; // hex4 advanced past the digits already
                        }
                        _ => return Err(self.err("invalid escape sequence")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Multi-byte UTF-8 sequences are copied verbatim.
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest)
                        .map_err(|_| self.err("invalid UTF-8 in string"))?;
                    let c = s.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, Error> {
        let end = self.pos + 4;
        if end > self.bytes.len() {
            return Err(self.err("truncated \\u escape"));
        }
        let hex = std::str::from_utf8(&self.bytes[self.pos..end])
            .map_err(|_| self.err("invalid \\u escape"))?;
        let cp = u32::from_str_radix(hex, 16).map_err(|_| self.err("invalid \\u escape"))?;
        self.pos = end;
        Ok(cp)
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        let mut is_float = false;
        if self.peek() == Some(b'.') {
            is_float = true;
            self.pos += 1;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            is_float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid number"))?;
        if !is_float {
            if let Ok(u) = text.parse::<u64>() {
                return Ok(Value::Number(Number::U(u)));
            }
            if let Ok(i) = text.parse::<i64>() {
                return Ok(Value::Number(Number::I(i)));
            }
        }
        text.parse::<f64>()
            .map(|f| Value::Number(Number::F(f)))
            .map_err(|_| self.err(format!("invalid number `{text}`")))
    }
}
