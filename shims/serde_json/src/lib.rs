//! Offline stand-in for `serde_json`.
//!
//! Serializes the shim `serde`'s [`Value`] tree to JSON text and parses it
//! back. Floats are printed with Rust's shortest-round-trip formatting, so
//! `f64` (and `f32` via exact widening) survive a round trip bit-exactly;
//! non-finite floats encode as `null` (see the serde shim's float impls).

pub use serde::value::{Number, Value};
use serde::{Deserialize, Serialize};

mod parse;
mod write;

pub use parse::parse_value;
pub use write::{write_compact, write_pretty};

/// Error for both syntax problems and shape mismatches, mirroring
/// `serde_json::Error` closely enough for this workspace's `From` impls.
#[derive(Debug)]
pub enum Error {
    /// Malformed JSON text, with a byte offset.
    Syntax { msg: String, offset: usize },
    /// Structurally valid JSON that does not fit the target type.
    Data(String),
    /// Underlying reader/writer failure.
    Io(std::io::Error),
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Error::Syntax { msg, offset } => {
                write!(f, "JSON syntax error at byte {offset}: {msg}")
            }
            Error::Data(msg) => write!(f, "JSON data error: {msg}"),
            Error::Io(e) => write!(f, "JSON io error: {e}"),
        }
    }
}

impl std::error::Error for Error {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Error::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for Error {
    fn from(e: std::io::Error) -> Self {
        Error::Io(e)
    }
}

impl From<serde::DeError> for Error {
    fn from(e: serde::DeError) -> Self {
        Error::Data(e.0)
    }
}

/// Serialize to a compact JSON string. Infallible for tree-model values;
/// returns `Result` for signature compatibility.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    Ok(write_compact(&value.to_value()))
}

/// Serialize to an indented JSON string.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    Ok(write_pretty(&value.to_value()))
}

/// Serialize compactly into a writer.
pub fn to_writer<W: std::io::Write, T: Serialize + ?Sized>(
    mut writer: W,
    value: &T,
) -> Result<(), Error> {
    writer.write_all(write_compact(&value.to_value()).as_bytes())?;
    Ok(())
}

/// Serialize with indentation into a writer.
pub fn to_writer_pretty<W: std::io::Write, T: Serialize + ?Sized>(
    mut writer: W,
    value: &T,
) -> Result<(), Error> {
    writer.write_all(write_pretty(&value.to_value()).as_bytes())?;
    writer.write_all(b"\n")?;
    Ok(())
}

/// Deserialize from a JSON string.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T, Error> {
    let value = parse_value(s)?;
    Ok(T::from_value(&value)?)
}

/// Deserialize from a reader (reads to end first; the tree model has no
/// streaming parser).
pub fn from_reader<R: std::io::Read, T: Deserialize>(mut reader: R) -> Result<T, Error> {
    let mut buf = String::new();
    reader.read_to_string(&mut buf)?;
    from_str(&buf)
}

/// Convert any serializable value into a [`Value`] tree.
pub fn to_value<T: Serialize + ?Sized>(value: &T) -> Result<Value, Error> {
    Ok(value.to_value())
}

/// Rebuild a typed value from a [`Value`] tree.
pub fn from_value<T: Deserialize>(value: Value) -> Result<T, Error> {
    Ok(T::from_value(&value)?)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_roundtrips() {
        assert_eq!(to_string(&true).unwrap(), "true");
        assert_eq!(to_string(&42u32).unwrap(), "42");
        assert_eq!(to_string(&-7i64).unwrap(), "-7");
        assert_eq!(to_string(&1.5f64).unwrap(), "1.5");
        assert!(from_str::<bool>("true").unwrap());
        assert_eq!(from_str::<u64>("42").unwrap(), 42);
        assert_eq!(from_str::<f32>("1.5").unwrap(), 1.5);
    }

    #[test]
    fn float_roundtrip_is_exact() {
        for &x in &[0.1f32, 1.0 / 3.0, f32::MIN_POSITIVE, 1e30, -2.5e-12] {
            let s = to_string(&x).unwrap();
            let back: f32 = from_str(&s).unwrap();
            assert_eq!(x.to_bits(), back.to_bits(), "{x} -> {s} -> {back}");
        }
        for &x in &[0.1f64, std::f64::consts::PI, 1e300] {
            let s = to_string(&x).unwrap();
            let back: f64 = from_str(&s).unwrap();
            assert_eq!(x.to_bits(), back.to_bits());
        }
    }

    #[test]
    fn nan_inf_encode_as_null_and_parse_as_nan() {
        assert_eq!(to_string(&f32::NAN).unwrap(), "null");
        assert_eq!(to_string(&f64::INFINITY).unwrap(), "null");
        assert!(from_str::<f32>("null").unwrap().is_nan());
    }

    #[test]
    fn u64_extremes_roundtrip() {
        let s = to_string(&u64::MAX).unwrap();
        assert_eq!(from_str::<u64>(&s).unwrap(), u64::MAX);
        let s = to_string(&i64::MIN).unwrap();
        assert_eq!(from_str::<i64>(&s).unwrap(), i64::MIN);
    }

    #[test]
    fn containers_roundtrip() {
        let v = vec![vec![1u32, 2], vec![3]];
        let s = to_string(&v).unwrap();
        assert_eq!(s, "[[1,2],[3]]");
        assert_eq!(from_str::<Vec<Vec<u32>>>(&s).unwrap(), v);

        let t = (1u32, "hi".to_string(), Some(2.5f64));
        let s = to_string(&t).unwrap();
        assert_eq!(from_str::<(u32, String, Option<f64>)>(&s).unwrap(), t);

        let none: Option<u32> = None;
        assert_eq!(to_string(&none).unwrap(), "null");
        assert_eq!(from_str::<Option<u32>>("null").unwrap(), None);
    }

    #[test]
    fn string_escapes_roundtrip() {
        let s = "line1\nline2\t\"quoted\" \\ \u{1F600} \u{7} end".to_string();
        let json = to_string(&s).unwrap();
        assert_eq!(from_str::<String>(&json).unwrap(), s);
    }

    #[test]
    fn unicode_escape_parsing() {
        assert_eq!(from_str::<String>(r#""Aé""#).unwrap(), "Aé");
        // Surrogate pair.
        assert_eq!(from_str::<String>(r#""😀""#).unwrap(), "😀");
    }

    #[test]
    fn pretty_output_parses_back() {
        let v = Value::Object(vec![
            ("a".into(), Value::Array(vec![Value::Number(Number::U(1))])),
            ("b".into(), Value::Null),
        ]);
        let pretty = write_pretty(&v);
        assert!(pretty.contains('\n'));
        assert_eq!(parse_value(&pretty).unwrap(), v);
    }

    #[test]
    fn syntax_errors_are_reported() {
        assert!(from_str::<u32>("[1,").is_err());
        assert!(from_str::<u32>("{\"a\":}").is_err());
        assert!(from_str::<u32>("tru").is_err());
        assert!(from_str::<u32>("1 trailing").is_err());
        assert!(from_str::<u32>("").is_err());
    }

    #[test]
    fn whitespace_tolerated() {
        assert_eq!(
            from_str::<Vec<u32>>(" [ 1 , 2 ,\n\t3 ] ").unwrap(),
            vec![1, 2, 3]
        );
    }
}
