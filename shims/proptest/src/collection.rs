//! Collection strategies (`proptest::collection::vec`).

use crate::strategy::Strategy;
use crate::TestRng;
use rand::Rng;
use std::ops::{Range, RangeInclusive};

/// Lengths accepted by [`vec`]: a fixed size or a range of sizes.
pub trait SizeRange {
    fn sample_len(&self, rng: &mut TestRng) -> usize;
}

impl SizeRange for usize {
    fn sample_len(&self, _rng: &mut TestRng) -> usize {
        *self
    }
}

impl SizeRange for Range<usize> {
    fn sample_len(&self, rng: &mut TestRng) -> usize {
        rng.0.gen_range(self.start..self.end)
    }
}

impl SizeRange for RangeInclusive<usize> {
    fn sample_len(&self, rng: &mut TestRng) -> usize {
        rng.0.gen_range(self.clone())
    }
}

/// A `Vec` whose elements come from `element` and whose length comes
/// from `size`.
pub fn vec<S: Strategy, L: SizeRange>(element: S, size: L) -> VecStrategy<S, L> {
    VecStrategy { element, size }
}

pub struct VecStrategy<S, L> {
    element: S,
    size: L,
}

impl<S: Strategy, L: SizeRange> Strategy for VecStrategy<S, L> {
    type Value = Vec<S::Value>;
    fn gen(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let len = self.size.sample_len(rng);
        (0..len).map(|_| self.element.gen(rng)).collect()
    }
}
