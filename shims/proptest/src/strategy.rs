//! Strategies: composable random-value generators.

use crate::TestRng;
use rand::Rng;
use rand::SampleUniform;
use std::ops::{Range, RangeInclusive};
use std::rc::Rc;

/// A source of random values of one type.
///
/// `gen` is object-safe; the combinators require `Sized` and so live on
/// the trait with default implementations.
pub trait Strategy {
    type Value: std::fmt::Debug;

    fn gen(&self, rng: &mut TestRng) -> Self::Value;

    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        U: std::fmt::Debug,
        F: Fn(Self::Value) -> U,
    {
        Map { base: self, f }
    }

    fn prop_flat_map<S2, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S2: Strategy,
        F: Fn(Self::Value) -> S2,
    {
        FlatMap { base: self, f }
    }

    fn prop_filter<R, P>(self, reason: R, pred: P) -> Filter<Self, P>
    where
        Self: Sized,
        R: ToString,
        P: Fn(&Self::Value) -> bool,
    {
        Filter {
            base: self,
            pred,
            reason: reason.to_string(),
        }
    }

    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        let inner = Rc::new(self);
        BoxedStrategy::new(Rc::new(move |rng: &mut TestRng| inner.gen(rng)))
    }
}

/// Type-erased strategy (also what `any::<T>()` returns).
pub struct BoxedStrategy<T> {
    gen_fn: Rc<dyn Fn(&mut TestRng) -> T>,
}

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        Self {
            gen_fn: Rc::clone(&self.gen_fn),
        }
    }
}

impl<T> BoxedStrategy<T> {
    pub fn new(gen_fn: Rc<dyn Fn(&mut TestRng) -> T>) -> Self {
        Self { gen_fn }
    }
}

impl<T: std::fmt::Debug> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn gen(&self, rng: &mut TestRng) -> T {
        (self.gen_fn)(rng)
    }
}

/// Always yields a clone of the given value.
#[derive(Debug, Clone)]
pub struct Just<T>(pub T);

impl<T: Clone + std::fmt::Debug> Strategy for Just<T> {
    type Value = T;
    fn gen(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

impl<T> Strategy for Range<T>
where
    T: SampleUniform + std::fmt::Debug + 'static,
{
    type Value = T;
    fn gen(&self, rng: &mut TestRng) -> T {
        rng.0.gen_range(self.start..self.end)
    }
}

impl<T> Strategy for RangeInclusive<T>
where
    T: SampleUniform + std::fmt::Debug + 'static,
{
    type Value = T;
    fn gen(&self, rng: &mut TestRng) -> T {
        rng.0.gen_range(*self.start()..=*self.end())
    }
}

pub struct Map<S, F> {
    base: S,
    f: F,
}

impl<S, U, F> Strategy for Map<S, F>
where
    S: Strategy,
    U: std::fmt::Debug,
    F: Fn(S::Value) -> U,
{
    type Value = U;
    fn gen(&self, rng: &mut TestRng) -> U {
        (self.f)(self.base.gen(rng))
    }
}

pub struct FlatMap<S, F> {
    base: S,
    f: F,
}

impl<S, S2, F> Strategy for FlatMap<S, F>
where
    S: Strategy,
    S2: Strategy,
    F: Fn(S::Value) -> S2,
{
    type Value = S2::Value;
    fn gen(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.base.gen(rng)).gen(rng)
    }
}

pub struct Filter<S, P> {
    base: S,
    pred: P,
    reason: String,
}

impl<S, P> Strategy for Filter<S, P>
where
    S: Strategy,
    P: Fn(&S::Value) -> bool,
{
    type Value = S::Value;
    fn gen(&self, rng: &mut TestRng) -> S::Value {
        // Rejection sampling; a predicate this starved indicates a broken
        // strategy, so fail loudly rather than looping forever.
        for _ in 0..10_000 {
            let v = self.base.gen(rng);
            if (self.pred)(&v) {
                return v;
            }
        }
        panic!("prop_filter exhausted retries: {}", self.reason);
    }
}

/// Uniform choice between same-valued strategies (built by `prop_oneof!`).
pub struct Union<T> {
    options: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one option");
        Self { options }
    }
}

impl<T: std::fmt::Debug> Strategy for Union<T> {
    type Value = T;
    fn gen(&self, rng: &mut TestRng) -> T {
        let i = rng.0.gen_range(0..self.options.len());
        self.options[i].gen(rng)
    }
}

macro_rules! tuple_strategy {
    ($(($($s:ident : $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn gen(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.gen(rng),)+)
            }
        }
    )*};
}
tuple_strategy! {
    (A: 0)
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
    (A: 0, B: 1, C: 2, D: 3, E: 4)
    (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5)
    (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5, G: 6)
    (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5, G: 6, H: 7)
}
