//! Offline stand-in for `proptest`.
//!
//! Runs each property over `cases` pseudo-random inputs drawn from
//! [`Strategy`] values. The RNG is seeded deterministically from the test
//! name, so failures are reproducible run-to-run. Unlike real proptest
//! there is **no shrinking**: a failing case panics with the generated
//! inputs' `Debug` rendering (see the `proptest!` macro), which for the
//! small domains used in this workspace is diagnostic enough.
//!
//! Supported surface: range strategies over the numeric primitives,
//! `any::<T>()`, `Just`, tuples of strategies, `prop_map` /
//! `prop_flat_map` / `prop_filter` / `boxed`, `collection::vec`,
//! `prop_oneof!`, `prop_assert!`/`prop_assert_eq!`/`prop_assert_ne!`, and
//! `ProptestConfig::with_cases`.

use std::rc::Rc;

pub mod collection;
pub mod strategy;

pub use strategy::{BoxedStrategy, Just, Strategy};

/// Re-exports mirroring `proptest::prelude::*`.
pub mod prelude {
    pub use crate::collection;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest, ProptestConfig,
        TestRng,
    };

    /// `prop::...` paths as used by upstream's prelude.
    pub mod prop {
        pub use crate::collection;
        pub use crate::strategy;
    }
}

/// Runner configuration.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases per property.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        // Upstream defaults to 256; 64 keeps single-threaded CI fast while
        // still exercising each property broadly.
        Self { cases: 64 }
    }
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

/// The RNG handed to strategies. Deterministic per test name.
pub struct TestRng(pub rand::rngs::SmallRng);

impl TestRng {
    pub fn deterministic(name: &str) -> Self {
        // FNV-1a over the test name gives a stable per-test seed.
        let mut h: u64 = 0xcbf29ce484222325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100000001b3);
        }
        use rand::SeedableRng;
        Self(rand::rngs::SmallRng::seed_from_u64(h))
    }
}

/// Types with a canonical strategy (`any::<T>()`).
pub trait Arbitrary: Sized + std::fmt::Debug {
    fn arbitrary() -> BoxedStrategy<Self>;
}

/// The canonical strategy for `T`.
pub fn any<T: Arbitrary>() -> BoxedStrategy<T> {
    T::arbitrary()
}

macro_rules! arbitrary_full_range_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary() -> BoxedStrategy<Self> {
                BoxedStrategy::new(Rc::new(|rng: &mut TestRng| {
                    use rand::Rng;
                    rng.0.gen::<$t>()
                }))
            }
        }
    )*};
}
arbitrary_full_range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary() -> BoxedStrategy<Self> {
        BoxedStrategy::new(Rc::new(|rng: &mut TestRng| {
            use rand::Rng;
            rng.0.gen::<bool>()
        }))
    }
}

macro_rules! arbitrary_unit_float {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            /// Uniform over `[0, 1)` — a pragmatic default (upstream samples
            /// weird floats too; nothing in-tree relies on that).
            fn arbitrary() -> BoxedStrategy<Self> {
                BoxedStrategy::new(Rc::new(|rng: &mut TestRng| {
                    use rand::Rng;
                    rng.0.gen::<$t>()
                }))
            }
        }
    )*};
}
arbitrary_unit_float!(f32, f64);

/// Assert inside a property; panics abort the whole test (no shrinking).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            panic!("property failed: {}", stringify!($cond));
        }
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            panic!("property failed: {}", format!($($fmt)*));
        }
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {{
        let (left, right) = (&$a, &$b);
        if !(left == right) {
            panic!(
                "property failed: {} == {}\n  left: {:?}\n right: {:?}",
                stringify!($a), stringify!($b), left, right
            );
        }
    }};
    ($a:expr, $b:expr, $($fmt:tt)*) => {{
        let (left, right) = (&$a, &$b);
        if !(left == right) {
            panic!(
                "property failed: {}\n  left: {:?}\n right: {:?}",
                format!($($fmt)*), left, right
            );
        }
    }};
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => {{
        let (left, right) = (&$a, &$b);
        if left == right {
            panic!(
                "property failed: {} != {}\n  both: {:?}",
                stringify!($a),
                stringify!($b),
                left
            );
        }
    }};
}

/// Union of same-valued strategies, chosen uniformly per case.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::Strategy::boxed($strategy)),+
        ])
    };
}

/// The test-defining macro. Mirrors upstream's surface syntax:
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(32))]   // optional
///     #[test]
///     fn my_property(x in 0usize..10, (lo, hi) in pair()) { ... }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    // `@impl` must precede the catch-all arm or expansion recurses forever.
    (@impl ($cfg:expr); $(
        $(#[$meta:meta])+
        fn $name:ident($($pat:pat in $strategy:expr),* $(,)?) $body:block
    )*) => {$(
        $(#[$meta])+
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            let mut rng = $crate::TestRng::deterministic(concat!(module_path!(), "::", stringify!($name)));
            for case in 0..config.cases {
                // Bind each argument from its strategy, logging the values
                // on failure via a bomb that prints on unwind.
                let values_desc = std::cell::RefCell::new(String::new());
                $(
                    let value = $crate::Strategy::gen(&$strategy, &mut rng);
                    {
                        use std::fmt::Write;
                        let _ = write!(
                            values_desc.borrow_mut(),
                            "\n  {} = {:?}", stringify!($pat), &value
                        );
                    }
                    let $pat = value;
                )*
                let bomb = $crate::CaseReporter {
                    case,
                    values: &values_desc,
                    armed: true,
                };
                $body
                bomb.disarm();
            }
        }
    )*};
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@impl ($cfg); $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@impl ($crate::ProptestConfig::default()); $($rest)*);
    };
}

/// Prints the failing case's inputs when a property body panics.
pub struct CaseReporter<'a> {
    pub case: u32,
    pub values: &'a std::cell::RefCell<String>,
    pub armed: bool,
}

impl CaseReporter<'_> {
    pub fn disarm(mut self) {
        self.armed = false;
    }
}

impl Drop for CaseReporter<'_> {
    fn drop(&mut self) {
        if self.armed && std::thread::panicking() {
            eprintln!(
                "proptest case #{} failed with inputs:{}",
                self.case,
                self.values.borrow()
            );
        }
    }
}
