//! The in-memory JSON tree shared by the `serde` and `serde_json` shims.

/// A JSON number. Integers keep their exact representation so `u64`/`i64`
/// round-trip losslessly; everything else is an `f64`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Number {
    I(i64),
    U(u64),
    F(f64),
}

impl Number {
    pub fn as_f64(&self) -> f64 {
        match *self {
            Number::I(v) => v as f64,
            Number::U(v) => v as f64,
            Number::F(v) => v,
        }
    }

    pub fn as_i64(&self) -> Option<i64> {
        match *self {
            Number::I(v) => Some(v),
            Number::U(v) => i64::try_from(v).ok(),
            Number::F(v) if v.fract() == 0.0 && v.abs() < 2f64.powi(53) => Some(v as i64),
            Number::F(_) => None,
        }
    }

    pub fn as_u64(&self) -> Option<u64> {
        match *self {
            Number::I(v) => u64::try_from(v).ok(),
            Number::U(v) => Some(v),
            Number::F(v) if v.fract() == 0.0 && v >= 0.0 && v < 2f64.powi(53) => Some(v as u64),
            Number::F(_) => None,
        }
    }
}

/// A JSON value. Objects preserve insertion order (they come from struct
/// fields, whose order is fixed), so serialization is deterministic.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    Null,
    Bool(bool),
    Number(Number),
    String(String),
    Array(Vec<Value>),
    Object(Vec<(String, Value)>),
}

impl Value {
    pub fn kind_name(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::Number(_) => "number",
            Value::String(_) => "string",
            Value::Array(_) => "array",
            Value::Object(_) => "object",
        }
    }

    pub fn as_object(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Object(pairs) => Some(pairs),
            _ => None,
        }
    }

    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(items) => Some(items),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(n) => Some(n.as_f64()),
            _ => None,
        }
    }

    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Number(n) => n.as_u64(),
            _ => None,
        }
    }

    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Number(n) => n.as_i64(),
            _ => None,
        }
    }

    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Object field lookup (`None` for non-objects or missing keys).
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.as_object()
            .and_then(|pairs| pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v))
    }
}
