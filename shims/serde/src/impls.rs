//! `Serialize`/`Deserialize` impls for std types used across the workspace.

use crate::{DeError, Deserialize, Number, Serialize, Value};

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        v.as_bool().ok_or_else(|| DeError::expected("bool", v))
    }
}

macro_rules! ser_de_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Number(Number::U(*self as u64))
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                let n = v.as_u64().ok_or_else(|| DeError::expected("unsigned integer", v))?;
                <$t>::try_from(n).map_err(|_| DeError::new(format!(
                    "{n} out of range for {}", stringify!($t)
                )))
            }
        }
    )*};
}
ser_de_uint!(u8, u16, u32, u64, usize);

macro_rules! ser_de_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Number(Number::I(*self as i64))
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                let n = v.as_i64().ok_or_else(|| DeError::expected("integer", v))?;
                <$t>::try_from(n).map_err(|_| DeError::new(format!(
                    "{n} out of range for {}", stringify!($t)
                )))
            }
        }
    )*};
}
ser_de_int!(i8, i16, i32, i64, isize);

macro_rules! ser_de_float {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                let v = *self as f64;
                // JSON has no non-finite numbers; encode them as null
                // (mirrors the lossy but total convention of serde_json's
                // `arbitrary_precision`-free float handling).
                if v.is_finite() {
                    Value::Number(Number::F(v))
                } else {
                    Value::Null
                }
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                match v {
                    Value::Null => Ok(<$t>::NAN),
                    _ => v.as_f64()
                        .map(|f| f as $t)
                        .ok_or_else(|| DeError::expected("number", v)),
                }
            }
        }
    )*};
}
ser_de_float!(f32, f64);

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::String(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        v.as_str()
            .map(str::to_owned)
            .ok_or_else(|| DeError::expected("string", v))
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::String(self.to_owned())
    }
}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl Deserialize for char {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        let s = v.as_str().ok_or_else(|| DeError::expected("string", v))?;
        let mut chars = s.chars();
        match (chars.next(), chars.next()) {
            (Some(c), None) => Ok(c),
            _ => Err(DeError::new("expected single-character string")),
        }
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        T::from_value(v).map(Box::new)
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(v) => v.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        v.as_array()
            .ok_or_else(|| DeError::expected("array", v))?
            .iter()
            .map(T::from_value)
            .collect()
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize, const N: usize> Deserialize for [T; N] {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        let items: Vec<T> = Vec::from_value(v)?;
        let len = items.len();
        <[T; N]>::try_from(items)
            .map_err(|_| DeError::new(format!("expected array of length {N}, got {len}")))
    }
}

macro_rules! ser_de_tuple {
    ($(($($name:ident : $idx:tt),+))*) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn to_value(&self) -> Value {
                Value::Array(vec![$(self.$idx.to_value()),+])
            }
        }
        impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                let items = v.as_array().ok_or_else(|| DeError::expected("array", v))?;
                let expect = [$($idx),+].len();
                if items.len() != expect {
                    return Err(DeError::new(format!(
                        "expected {expect}-tuple, got array of {}", items.len()
                    )));
                }
                Ok(($($name::from_value(&items[$idx])?,)+))
            }
        }
    )*};
}
ser_de_tuple! {
    (A: 0)
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
    (A: 0, B: 1, C: 2, D: 3, E: 4)
    (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5)
}

impl<K: ToString, V: Serialize> Serialize for std::collections::BTreeMap<K, V> {
    fn to_value(&self) -> Value {
        Value::Object(
            self.iter()
                .map(|(k, v)| (k.to_string(), v.to_value()))
                .collect(),
        )
    }
}

impl<V: Deserialize> Deserialize for std::collections::BTreeMap<String, V> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        v.as_object()
            .ok_or_else(|| DeError::expected("object", v))?
            .iter()
            .map(|(k, v)| Ok((k.clone(), V::from_value(v)?)))
            .collect()
    }
}

impl<K: ToString + std::hash::Hash + Eq, V: Serialize> Serialize
    for std::collections::HashMap<K, V>
{
    fn to_value(&self) -> Value {
        // Deterministic output: sort by key.
        let mut pairs: Vec<(String, Value)> = self
            .iter()
            .map(|(k, v)| (k.to_string(), v.to_value()))
            .collect();
        pairs.sort_by(|a, b| a.0.cmp(&b.0));
        Value::Object(pairs)
    }
}

impl<V: Deserialize> Deserialize for std::collections::HashMap<String, V> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        v.as_object()
            .ok_or_else(|| DeError::expected("object", v))?
            .iter()
            .map(|(k, v)| Ok((k.clone(), V::from_value(v)?)))
            .collect()
    }
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        Ok(v.clone())
    }
}
