//! Offline stand-in for `serde`.
//!
//! The build environment cannot reach crates.io, so this crate provides a
//! deliberately small replacement: instead of serde's zero-copy
//! serializer/deserializer traits, [`Serialize`] renders a value into an
//! in-memory JSON [`Value`] tree and [`Deserialize`] reads one back. The
//! sibling `serde_json` shim handles text encoding of that tree, and the
//! `serde_derive` shim generates these impls for structs and enums.
//!
//! This trades generality (only JSON, always via a tree) for simplicity;
//! every `serde`/`serde_json` call site in the workspace goes through this
//! model.

pub use serde_derive::{Deserialize, Serialize};

pub mod value;
pub use value::{Number, Value};

mod impls;

/// Error produced when a [`Value`] tree does not match the target type.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeError(pub String);

impl DeError {
    pub fn new(msg: impl Into<String>) -> Self {
        Self(msg.into())
    }

    /// Standard "wrong shape" error.
    pub fn expected(what: &str, got: &Value) -> Self {
        Self(format!("expected {what}, got {}", got.kind_name()))
    }
}

impl std::fmt::Display for DeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "deserialization error: {}", self.0)
    }
}

impl std::error::Error for DeError {}

/// Render `self` into a JSON value tree.
pub trait Serialize {
    fn to_value(&self) -> Value;
}

/// Rebuild `Self` from a JSON value tree.
pub trait Deserialize: Sized {
    fn from_value(v: &Value) -> Result<Self, DeError>;
}

/// Helpers used by `serde_derive`-generated code. Not part of the public
/// API contract; kept `pub` so generated code in other crates can call them.
pub mod vhelp {
    use super::{DeError, Value};

    /// Look up a struct field by name.
    pub fn field<'a>(v: &'a Value, name: &str) -> Result<&'a Value, DeError> {
        match v {
            Value::Object(pairs) => pairs
                .iter()
                .find(|(k, _)| k == name)
                .map(|(_, v)| v)
                .ok_or_else(|| DeError(format!("missing field `{name}`"))),
            other => Err(DeError::expected("object", other)),
        }
    }

    /// Externally tagged enum variant: `{"Name": payload}`.
    pub fn variant(name: &str, payload: Value) -> Value {
        Value::Object(vec![(name.to_string(), payload)])
    }

    /// Split an externally tagged enum value into `(tag, payload)`.
    /// Unit variants are encoded as a bare string tag with no payload.
    pub fn untag(v: &Value) -> Result<(&str, Option<&Value>), DeError> {
        match v {
            Value::String(s) => Ok((s.as_str(), None)),
            Value::Object(pairs) if pairs.len() == 1 => {
                Ok((pairs[0].0.as_str(), Some(&pairs[0].1)))
            }
            other => Err(DeError::expected(
                "enum (string or single-key object)",
                other,
            )),
        }
    }

    /// Element `i` of an array payload (tuple structs / tuple variants).
    pub fn element(v: &Value, i: usize) -> Result<&Value, DeError> {
        match v {
            Value::Array(items) => items
                .get(i)
                .ok_or_else(|| DeError(format!("missing tuple element {i}"))),
            other => Err(DeError::expected("array", other)),
        }
    }
}
