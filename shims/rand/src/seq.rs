//! Sequence helpers, mirroring `rand::seq::SliceRandom`.

use crate::{Rng, RngCore};

pub trait SliceRandom {
    type Item;

    /// Fisher–Yates shuffle in place.
    fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

    /// A uniformly random element, `None` for an empty slice.
    fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
}

impl<T> SliceRandom for [T] {
    type Item = T;

    fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
        for i in (1..self.len()).rev() {
            // UFCS with Self = `&mut R` (Sized) satisfies `gen_range`'s bound.
            let j = Rng::gen_range(&mut &mut *rng, 0..=i);
            self.swap(i, j);
        }
    }

    fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
        if self.is_empty() {
            None
        } else {
            Some(&self[Rng::gen_range(&mut &mut *rng, 0..self.len())])
        }
    }
}
