//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no access to crates.io, so the workspace ships
//! a minimal, self-contained implementation of the exact `rand 0.8` surface
//! it consumes: [`rngs::SmallRng`] (xoshiro256++ seeded via splitmix64),
//! [`SeedableRng::seed_from_u64`], the [`Rng`] extension methods
//! (`gen`, `gen_range`, `gen_bool`) and [`seq::SliceRandom`] shuffling.
//!
//! Determinism matters more than stream compatibility here: seeded runs are
//! reproducible across platforms, but the byte streams are *not* identical
//! to upstream `rand` (nothing in the workspace depends on that).

pub mod rngs;
pub mod seq;

mod distr;
pub use distr::{SampleRange, SampleUniform, StandardSample};

/// Core source of randomness: a 64-bit generator.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let bytes = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Extension methods over any [`RngCore`], mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Sample a value from the "standard" distribution of its type
    /// (uniform `[0, 1)` for floats, full range for integers).
    fn gen<T: StandardSample>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample_standard(self)
    }

    /// Sample uniformly from a range (`lo..hi` or `lo..=hi`).
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        T: SampleUniform,
        R: SampleRange<T>,
        Self: Sized,
    {
        range.sample_single(self)
    }

    /// Bernoulli trial with probability `p` of `true`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        f64::sample_standard(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Construction of seeded generators, mirroring `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;

    /// Seed from a non-cryptographic entropy source (process clock).
    fn from_entropy() -> Self {
        let nanos = std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map(|d| d.as_nanos() as u64)
            .unwrap_or(0x9e3779b97f4a7c15);
        Self::seed_from_u64(nanos)
    }
}

/// splitmix64 step, used for seeding and available to shim siblings.
#[inline]
pub fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e3779b97f4a7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rngs::SmallRng;
    use crate::seq::SliceRandom;

    #[test]
    fn seeded_streams_are_deterministic() {
        let mut a = SmallRng::seed_from_u64(7);
        let mut b = SmallRng::seed_from_u64(7);
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = SmallRng::seed_from_u64(1);
        let mut b = SmallRng::seed_from_u64(2);
        let same = (0..16).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 4);
    }

    #[test]
    fn float_ranges_stay_in_bounds() {
        let mut rng = SmallRng::seed_from_u64(3);
        for _ in 0..1000 {
            let x: f32 = rng.gen_range(0.25..0.75);
            assert!((0.25..0.75).contains(&x));
            let y: f64 = rng.gen_range(-2.0..=2.0);
            assert!((-2.0..=2.0).contains(&y));
            let u: f32 = rng.gen();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn int_ranges_stay_in_bounds_and_cover() {
        let mut rng = SmallRng::seed_from_u64(4);
        let mut seen = [false; 8];
        for _ in 0..500 {
            let k: usize = rng.gen_range(0..8);
            seen[k] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = SmallRng::seed_from_u64(5);
        let mut v: Vec<u32> = (0..100).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<u32>>());
        assert_ne!(v, sorted, "shuffle left the slice in order (p ~ 1/100!)");
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = SmallRng::seed_from_u64(6);
        assert!(!(0..100).any(|_| rng.gen_bool(0.0)));
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
    }
}
