//! Sampling traits backing `Rng::gen` and `Rng::gen_range`.

use crate::RngCore;
use std::ops::{Range, RangeInclusive};

/// Types samplable from the "standard" distribution (`Rng::gen`).
pub trait StandardSample: Sized {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! standard_int {
    ($($t:ty),*) => {$(
        impl StandardSample for $t {
            #[inline]
            fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl StandardSample for u128 {
    #[inline]
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128
    }
}

impl StandardSample for bool {
    #[inline]
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl StandardSample for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision.
    #[inline]
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl StandardSample for f32 {
    /// Uniform in `[0, 1)` with 24 bits of precision.
    #[inline]
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

/// Types with uniform sampling over a range (`Rng::gen_range`).
pub trait SampleUniform: PartialOrd + Copy {
    /// Uniform over `[lo, hi)`; requires `lo < hi`.
    fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;
    /// Uniform over `[lo, hi]`; requires `lo <= hi`.
    fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;
}

macro_rules! uniform_int {
    ($($t:ty => $u:ty),*) => {$(
        impl SampleUniform for $t {
            #[inline]
            fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                debug_assert!(lo < hi);
                let span = (hi as $u).wrapping_sub(lo as $u);
                lo.wrapping_add((reject_mod(rng, span as u64) as $u) as $t)
            }
            #[inline]
            fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                debug_assert!(lo <= hi);
                let span = (hi as $u).wrapping_sub(lo as $u);
                if span as u64 == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo.wrapping_add((reject_mod(rng, span as u64 + 1) as $u) as $t)
            }
        }
    )*};
}
uniform_int!(u8 => u8, u16 => u16, u32 => u32, u64 => u64, usize => usize,
             i8 => u8, i16 => u16, i32 => u32, i64 => u64, isize => usize);

/// Uniform integer in `[0, n)` by rejection sampling (no modulo bias).
#[inline]
fn reject_mod<R: RngCore + ?Sized>(rng: &mut R, n: u64) -> u64 {
    debug_assert!(n > 0);
    if n.is_power_of_two() {
        return rng.next_u64() & (n - 1);
    }
    let zone = u64::MAX - (u64::MAX % n);
    loop {
        let v = rng.next_u64();
        if v < zone {
            return v % n;
        }
    }
}

macro_rules! uniform_float {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            #[inline]
            fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                debug_assert!(lo < hi);
                let u = <$t as StandardSample>::sample_standard(rng);
                let v = lo + (hi - lo) * u;
                // Guard against `lo + span * u` rounding up to `hi`.
                if v >= hi { lo } else { v }
            }
            #[inline]
            fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                debug_assert!(lo <= hi);
                let u = <$t as StandardSample>::sample_standard(rng);
                lo + (hi - lo) * u
            }
        }
    )*};
}
uniform_float!(f32, f64);

/// Range forms accepted by `Rng::gen_range`.
pub trait SampleRange<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    #[inline]
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        assert!(self.start < self.end, "gen_range: empty range");
        T::sample_half_open(rng, self.start, self.end)
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    #[inline]
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (lo, hi) = self.into_inner();
        assert!(lo <= hi, "gen_range: empty range");
        T::sample_inclusive(rng, lo, hi)
    }
}
