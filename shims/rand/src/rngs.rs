//! Named generators. Only `SmallRng` is provided: a xoshiro256++ generator,
//! matching upstream's choice of a small, fast, non-cryptographic PRNG.

use crate::{splitmix64, RngCore, SeedableRng};

/// xoshiro256++ — 256 bits of state, period 2^256 - 1.
#[derive(Debug, Clone)]
pub struct SmallRng {
    s: [u64; 4],
}

impl RngCore for SmallRng {
    #[inline]
    fn next_u64(&mut self) -> u64 {
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }
}

impl SeedableRng for SmallRng {
    fn seed_from_u64(seed: u64) -> Self {
        let mut sm = seed;
        // splitmix64 expansion guarantees a non-zero state even for seed 0.
        let s = [
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
        ];
        Self { s }
    }
}
