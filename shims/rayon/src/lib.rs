//! Offline stand-in for `rayon`.
//!
//! The build environment cannot reach crates.io, so this crate implements
//! the slice of rayon's API the workspace actually uses on top of
//! `std::thread::scope`:
//!
//! - `par_iter()` / `into_par_iter()` / `par_chunks_mut()` producers,
//! - `map` / `enumerate` / `filter` adaptors and `for_each` / `collect` /
//!   `sum` / `reduce` terminals,
//! - [`ThreadPoolBuilder`] / [`ThreadPool::install`] with an explicit
//!   thread-count override, honoured by every parallel terminal.
//!
//! Work is split into one contiguous chunk per worker; terminals preserve
//! input order where rayon does (`collect`). The implementation trades
//! rayon's work stealing for simplicity — fine for the coarse-grained,
//! evenly sized work units (frames, slabs, image rows, frontier blocks)
//! this workspace feeds it.

#![allow(clippy::type_complexity)]

use std::cell::Cell;
use std::num::NonZeroUsize;

pub mod prelude;

thread_local! {
    /// Thread-count override installed by [`ThreadPool::install`];
    /// 0 means "use the machine default".
    static POOL_THREADS: Cell<usize> = const { Cell::new(0) };
}

/// Number of threads parallel terminals will use on this thread.
pub fn current_num_threads() -> usize {
    let n = POOL_THREADS.with(|c| c.get());
    if n > 0 {
        n
    } else {
        std::thread::available_parallelism()
            .map(NonZeroUsize::get)
            .unwrap_or(1)
    }
}

/// Run `op` with an explicit thread-count override (0 = default).
fn with_thread_override<R>(n: usize, op: impl FnOnce() -> R) -> R {
    let prev = POOL_THREADS.with(|c| c.replace(n));
    struct Restore(usize);
    impl Drop for Restore {
        fn drop(&mut self) {
            POOL_THREADS.with(|c| c.set(self.0));
        }
    }
    let _restore = Restore(prev);
    op()
}

/// Builder mirroring `rayon::ThreadPoolBuilder`.
#[derive(Debug, Default)]
pub struct ThreadPoolBuilder {
    num_threads: usize,
}

/// Error type kept for signature compatibility; construction cannot fail.
#[derive(Debug)]
pub struct ThreadPoolBuildError;

impl std::fmt::Display for ThreadPoolBuildError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "thread pool build error")
    }
}

impl std::error::Error for ThreadPoolBuildError {}

impl ThreadPoolBuilder {
    pub fn new() -> Self {
        Self::default()
    }

    /// 0 means "default parallelism".
    pub fn num_threads(mut self, n: usize) -> Self {
        self.num_threads = n;
        self
    }

    pub fn build(self) -> Result<ThreadPool, ThreadPoolBuildError> {
        Ok(ThreadPool {
            num_threads: self.num_threads,
        })
    }
}

/// A handle carrying a thread-count policy. Threads are spawned scoped per
/// parallel terminal, so the pool itself holds no OS resources.
#[derive(Debug)]
pub struct ThreadPool {
    num_threads: usize,
}

impl ThreadPool {
    /// Run `op` so that parallel terminals inside it use this pool's
    /// thread count.
    pub fn install<R>(&self, op: impl FnOnce() -> R) -> R {
        with_thread_override(self.num_threads, op)
    }

    pub fn current_num_threads(&self) -> usize {
        if self.num_threads > 0 {
            self.num_threads
        } else {
            std::thread::available_parallelism()
                .map(NonZeroUsize::get)
                .unwrap_or(1)
        }
    }
}

/// Split `items` into at most `parts` contiguous chunks of near-equal size.
fn split_vec<T>(mut items: Vec<T>, parts: usize) -> Vec<Vec<T>> {
    let n = items.len();
    let parts = parts.clamp(1, n.max(1));
    let base = n / parts;
    let extra = n % parts;
    let mut out = Vec::with_capacity(parts);
    // Walk from the back so split_off is O(chunk), keeping order overall.
    let mut sizes: Vec<usize> = (0..parts).map(|i| base + usize::from(i < extra)).collect();
    while let Some(size) = sizes.pop() {
        let tail = items.split_off(items.len() - size);
        out.push(tail);
    }
    out.reverse();
    out
}

/// A parallel pipeline: base items plus a per-item transform, executed by
/// the terminal operations. This is the single concrete type behind every
/// producer/adaptor in the shim.
pub struct Par<B, F> {
    base: Vec<B>,
    f: F,
}

/// Entry point used by the producers in [`prelude`].
fn par_from<B: Send>(base: Vec<B>) -> Par<B, impl Fn(B) -> B + Sync> {
    Par { base, f: |b| b }
}

impl<B, I, F> Par<B, F>
where
    B: Send,
    I: Send,
    F: Fn(B) -> I + Sync,
{
    pub fn map<U, G>(self, g: G) -> Par<B, impl Fn(B) -> U + Sync>
    where
        U: Send,
        G: Fn(I) -> U + Sync,
    {
        let f = self.f;
        Par {
            base: self.base,
            f: move |b| g(f(b)),
        }
    }

    pub fn enumerate(self) -> Par<(usize, B), impl Fn((usize, B)) -> (usize, I) + Sync> {
        let f = self.f;
        Par {
            base: self.base.into_iter().enumerate().collect(),
            f: move |(i, b)| (i, f(b)),
        }
    }

    pub fn filter<P>(self, pred: P) -> Par<B, impl Fn(B) -> Option<I> + Sync>
    where
        P: Fn(&I) -> bool + Sync,
    {
        let f = self.f;
        Par {
            base: self.base,
            f: move |b| {
                let item = f(b);
                pred(&item).then_some(item)
            },
        }
    }

    /// Compatibility no-op (rayon uses it to bound splitting granularity).
    pub fn with_min_len(self, _min: usize) -> Self {
        self
    }

    pub fn for_each<G>(self, g: G)
    where
        G: Fn(I) + Sync,
    {
        let f = self.f;
        run_parts(self.base, |part| part.into_iter().for_each(|b| g(f(b))));
    }

    /// Order-preserving collect.
    pub fn collect<C>(self) -> C
    where
        C: FromIterator<I>,
    {
        let f = self.f;
        let parts = run_parts_map(self.base, |part| {
            part.into_iter().map(&f).collect::<Vec<I>>()
        });
        parts.into_iter().flatten().collect()
    }

    pub fn reduce<ID, OP>(self, identity: ID, op: OP) -> I
    where
        ID: Fn() -> I + Sync,
        OP: Fn(I, I) -> I + Sync,
    {
        let f = self.f;
        let parts = run_parts_map(self.base, |part| {
            part.into_iter().map(&f).fold(identity(), &op)
        });
        parts.into_iter().fold(identity(), &op)
    }

    pub fn sum<S>(self) -> S
    where
        S: std::iter::Sum<I> + std::iter::Sum<S> + Send,
    {
        let f = self.f;
        let parts = run_parts_map(self.base, |part| part.into_iter().map(&f).sum::<S>());
        parts.into_iter().sum()
    }

    pub fn count(self) -> usize {
        let f = self.f;
        let parts = run_parts_map(self.base, |part| part.into_iter().map(&f).count());
        parts.into_iter().sum()
    }
}

/// `filter` wraps items in `Option`; these terminals unwrap them.
impl<B, I, F> Par<B, F>
where
    B: Send,
    I: Send,
    F: Fn(B) -> Option<I> + Sync,
{
    pub fn collect_filtered<C>(self) -> C
    where
        C: FromIterator<I>,
    {
        let f = self.f;
        let parts = run_parts_map(self.base, |part| {
            part.into_iter().filter_map(&f).collect::<Vec<I>>()
        });
        parts.into_iter().flatten().collect()
    }
}

/// Execute `work` over contiguous parts of `items` on scoped threads.
fn run_parts<B: Send>(items: Vec<B>, work: impl Fn(Vec<B>) + Sync) {
    let threads = current_num_threads();
    if threads <= 1 || items.len() <= 1 {
        work(items);
        return;
    }
    let parts = split_vec(items, threads);
    std::thread::scope(|s| {
        let work = &work;
        for part in parts {
            s.spawn(move || work(part));
        }
    });
}

/// As [`run_parts`], returning each part's result in input order.
fn run_parts_map<B: Send, R: Send>(items: Vec<B>, work: impl Fn(Vec<B>) -> R + Sync) -> Vec<R> {
    let threads = current_num_threads();
    if threads <= 1 || items.len() <= 1 {
        return vec![work(items)];
    }
    let parts = split_vec(items, threads);
    std::thread::scope(|s| {
        let work = &work;
        let handles: Vec<_> = parts
            .into_iter()
            .map(|part| s.spawn(move || work(part)))
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("rayon shim worker panicked"))
            .collect()
    })
}

/// `rayon::join` — runs both closures, in parallel when threads allow.
pub fn join<A, B, RA, RB>(a: A, b: B) -> (RA, RB)
where
    A: FnOnce() -> RA + Send,
    B: FnOnce() -> RB + Send,
    RA: Send,
    RB: Send,
{
    if current_num_threads() <= 1 {
        let ra = a();
        let rb = b();
        return (ra, rb);
    }
    std::thread::scope(|s| {
        let hb = s.spawn(b);
        let ra = a();
        let rb = hb.join().expect("rayon shim join worker panicked");
        (ra, rb)
    })
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use super::*;

    #[test]
    fn map_collect_preserves_order() {
        let v: Vec<u64> = (0..1000).collect();
        let out: Vec<u64> = v.par_iter().map(|&x| x * 2).collect();
        assert_eq!(out, (0..1000).map(|x| x * 2).collect::<Vec<u64>>());
    }

    #[test]
    fn into_par_iter_range() {
        let out: Vec<usize> = (0..100usize).into_par_iter().map(|i| i + 1).collect();
        assert_eq!(out, (1..=100).collect::<Vec<usize>>());
    }

    #[test]
    fn chunks_mut_enumerate_for_each() {
        let mut data = vec![0u32; 64];
        data.par_chunks_mut(16).enumerate().for_each(|(i, chunk)| {
            for v in chunk.iter_mut() {
                *v = i as u32;
            }
        });
        assert_eq!(data[0], 0);
        assert_eq!(data[16], 1);
        assert_eq!(data[32], 2);
        assert_eq!(data[48], 3);
    }

    #[test]
    fn sum_and_reduce() {
        let v: Vec<u64> = (1..=100).collect();
        let s: u64 = v.par_iter().map(|&x| x).sum();
        assert_eq!(s, 5050);
        let m = v.par_iter().map(|&x| x).reduce(|| 0, u64::max);
        assert_eq!(m, 100);
    }

    #[test]
    fn filter_collect() {
        let v: Vec<u64> = (0..100).collect();
        let evens: Vec<u64> = v
            .par_iter()
            .map(|&x| x)
            .filter(|x| x % 2 == 0)
            .collect_filtered();
        assert_eq!(evens.len(), 50);
    }

    #[test]
    fn pool_install_overrides_thread_count() {
        let pool = ThreadPoolBuilder::new().num_threads(3).build().unwrap();
        assert_eq!(pool.install(current_num_threads), 3);
    }

    #[test]
    fn join_runs_both() {
        let (a, b) = join(|| 1 + 1, || 2 + 2);
        assert_eq!((a, b), (2, 4));
    }

    #[test]
    fn split_vec_covers_all() {
        let parts = split_vec((0..10).collect::<Vec<_>>(), 3);
        assert_eq!(parts.len(), 3);
        let flat: Vec<_> = parts.into_iter().flatten().collect();
        assert_eq!(flat, (0..10).collect::<Vec<_>>());
    }
}
