//! Producer traits, mirroring `rayon::prelude`.

use crate::{par_from, Par};
use std::ops::Range;

/// `.par_iter()` on shared slices (and through deref, `Vec`).
pub trait IntoParallelRefIterator<'a> {
    type Item: Send + 'a;
    fn par_iter(&'a self) -> Par<Self::Item, impl Fn(Self::Item) -> Self::Item + Sync>;
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for [T] {
    type Item = &'a T;
    fn par_iter(&'a self) -> Par<&'a T, impl Fn(&'a T) -> &'a T + Sync> {
        par_from(self.iter().collect())
    }
}

/// `.par_iter_mut()` on mutable slices.
pub trait IntoParallelRefMutIterator<'a> {
    type Item: Send + 'a;
    fn par_iter_mut(&'a mut self) -> Par<Self::Item, impl Fn(Self::Item) -> Self::Item + Sync>;
}

impl<'a, T: Send + 'a> IntoParallelRefMutIterator<'a> for [T] {
    type Item = &'a mut T;
    fn par_iter_mut(&'a mut self) -> Par<&'a mut T, impl Fn(&'a mut T) -> &'a mut T + Sync> {
        par_from(self.iter_mut().collect())
    }
}

/// `.into_par_iter()` on owning / range producers.
pub trait IntoParallelIterator {
    type Item: Send;
    fn into_par_iter(self) -> Par<Self::Item, impl Fn(Self::Item) -> Self::Item + Sync>;
}

impl<T: Send> IntoParallelIterator for Vec<T> {
    type Item = T;
    fn into_par_iter(self) -> Par<T, impl Fn(T) -> T + Sync> {
        par_from(self)
    }
}

impl IntoParallelIterator for Range<usize> {
    type Item = usize;
    fn into_par_iter(self) -> Par<usize, impl Fn(usize) -> usize + Sync> {
        par_from(self.collect())
    }
}

impl IntoParallelIterator for Range<u32> {
    type Item = u32;
    fn into_par_iter(self) -> Par<u32, impl Fn(u32) -> u32 + Sync> {
        par_from(self.collect())
    }
}

/// `.par_chunks_mut()` on mutable slices.
pub trait ParallelSliceMut<'a, T: Send + 'a> {
    fn par_chunks_mut(
        &'a mut self,
        chunk_size: usize,
    ) -> Par<&'a mut [T], impl Fn(&'a mut [T]) -> &'a mut [T] + Sync>;
}

impl<'a, T: Send + 'a> ParallelSliceMut<'a, T> for [T] {
    fn par_chunks_mut(
        &'a mut self,
        chunk_size: usize,
    ) -> Par<&'a mut [T], impl Fn(&'a mut [T]) -> &'a mut [T] + Sync> {
        assert!(chunk_size > 0, "chunk size must be non-zero");
        par_from(self.chunks_mut(chunk_size).collect())
    }
}

/// `.par_chunks()` on shared slices.
pub trait ParallelSlice<'a, T: Sync + 'a> {
    fn par_chunks(&'a self, chunk_size: usize) -> Par<&'a [T], impl Fn(&'a [T]) -> &'a [T] + Sync>;
}

impl<'a, T: Sync + 'a> ParallelSlice<'a, T> for [T] {
    fn par_chunks(&'a self, chunk_size: usize) -> Par<&'a [T], impl Fn(&'a [T]) -> &'a [T] + Sync> {
        assert!(chunk_size > 0, "chunk size must be non-zero");
        par_from(self.chunks(chunk_size).collect())
    }
}
