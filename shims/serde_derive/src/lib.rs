//! Offline stand-in for `serde_derive`.
//!
//! Generates impls of the shim `serde`'s [`Serialize`]/[`Deserialize`]
//! traits (a JSON-value-tree model, far simpler than real serde's visitor
//! machinery). Since syn/quote are unavailable offline, the input item is
//! parsed directly from the `proc_macro` token stream and code is emitted
//! via string formatting.
//!
//! Supported shapes — the ones this workspace uses:
//! - structs with named fields (optionally generic over type parameters),
//! - tuple and unit structs,
//! - enums with unit, tuple, and struct variants.
//!
//! `#[serde(...)]` attributes are not supported (none are used in-tree).

use proc_macro::{Delimiter, TokenStream, TokenTree};

#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_serialize(&item)
        .parse()
        .expect("serde_derive: generated invalid Serialize impl")
}

#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_deserialize(&item)
        .parse()
        .expect("serde_derive: generated invalid Deserialize impl")
}

// ---------------------------------------------------------------------------
// Input model
// ---------------------------------------------------------------------------

struct Item {
    name: String,
    /// Type-parameter names (lifetimes and const params unsupported).
    type_params: Vec<String>,
    kind: Kind,
}

enum Kind {
    /// Named-field struct: field names in declaration order.
    Struct(Vec<String>),
    /// Tuple struct with N fields.
    TupleStruct(usize),
    /// Unit struct.
    UnitStruct,
    Enum(Vec<Variant>),
}

struct Variant {
    name: String,
    fields: VariantFields,
}

enum VariantFields {
    Unit,
    Tuple(usize),
    Named(Vec<String>),
}

// ---------------------------------------------------------------------------
// Token-stream parsing
// ---------------------------------------------------------------------------

fn parse_item(input: TokenStream) -> Item {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut pos = 0;
    skip_attrs_and_vis(&tokens, &mut pos);

    let keyword = expect_ident(&tokens, &mut pos);
    let name = expect_ident(&tokens, &mut pos);
    let type_params = parse_generics(&tokens, &mut pos);

    match keyword.as_str() {
        "struct" => match tokens.get(pos) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => Item {
                name,
                type_params,
                kind: Kind::Struct(parse_named_fields(g.stream())),
            },
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => Item {
                name,
                type_params,
                kind: Kind::TupleStruct(count_tuple_fields(g.stream())),
            },
            _ => Item {
                name,
                type_params,
                kind: Kind::UnitStruct,
            },
        },
        "enum" => match tokens.get(pos) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => Item {
                name,
                type_params,
                kind: Kind::Enum(parse_variants(g.stream())),
            },
            other => panic!("serde_derive: expected enum body, found {other:?}"),
        },
        other => panic!("serde_derive: cannot derive for `{other}` items"),
    }
}

/// Advance past `#[...]` attributes (incl. doc comments) and `pub`/`pub(...)`.
fn skip_attrs_and_vis(tokens: &[TokenTree], pos: &mut usize) {
    loop {
        match tokens.get(*pos) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                *pos += 1; // '#'
                if matches!(tokens.get(*pos), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Bracket)
                {
                    *pos += 1; // [...]
                }
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                *pos += 1;
                if matches!(tokens.get(*pos), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
                {
                    *pos += 1; // (crate) etc.
                }
            }
            _ => return,
        }
    }
}

fn expect_ident(tokens: &[TokenTree], pos: &mut usize) -> String {
    match tokens.get(*pos) {
        Some(TokenTree::Ident(id)) => {
            *pos += 1;
            id.to_string()
        }
        other => panic!("serde_derive: expected identifier, found {other:?}"),
    }
}

/// Parse `<...>` after the item name, returning type-parameter names.
fn parse_generics(tokens: &[TokenTree], pos: &mut usize) -> Vec<String> {
    let mut params = Vec::new();
    if !matches!(tokens.get(*pos), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        return params;
    }
    *pos += 1; // '<'
    let mut depth = 1usize;
    let mut at_param_start = true;
    while depth > 0 {
        let tok = tokens
            .get(*pos)
            .unwrap_or_else(|| panic!("serde_derive: unterminated generics"));
        match tok {
            TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => depth -= 1,
            TokenTree::Punct(p) if p.as_char() == ',' && depth == 1 => at_param_start = true,
            TokenTree::Punct(p) if p.as_char() == '\'' && at_param_start && depth == 1 => {
                panic!("serde_derive: lifetime parameters are not supported");
            }
            TokenTree::Ident(id) if at_param_start && depth == 1 => {
                let s = id.to_string();
                if s == "const" {
                    panic!("serde_derive: const parameters are not supported");
                }
                params.push(s);
                at_param_start = false;
            }
            _ => {}
        }
        *pos += 1;
    }
    params
}

/// Parse `{ field: Type, ... }`, returning field names.
fn parse_named_fields(body: TokenStream) -> Vec<String> {
    let tokens: Vec<TokenTree> = body.into_iter().collect();
    let mut fields = Vec::new();
    let mut pos = 0;
    while pos < tokens.len() {
        skip_attrs_and_vis(&tokens, &mut pos);
        if pos >= tokens.len() {
            break;
        }
        fields.push(expect_ident(&tokens, &mut pos));
        // ':' then the type, up to a comma outside any angle brackets.
        match tokens.get(pos) {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => pos += 1,
            other => panic!("serde_derive: expected `:` after field name, found {other:?}"),
        }
        skip_type(&tokens, &mut pos);
        if matches!(tokens.get(pos), Some(TokenTree::Punct(p)) if p.as_char() == ',') {
            pos += 1;
        }
    }
    fields
}

/// Advance past one type, stopping at a top-level `,` or end of stream.
/// Bracket/paren groups are single tokens; only `<`/`>` need depth tracking.
fn skip_type(tokens: &[TokenTree], pos: &mut usize) {
    let mut angle: usize = 0;
    while let Some(tok) = tokens.get(*pos) {
        match tok {
            TokenTree::Punct(p) if p.as_char() == '<' => angle += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => angle = angle.saturating_sub(1),
            TokenTree::Punct(p) if p.as_char() == ',' && angle == 0 => return,
            _ => {}
        }
        *pos += 1;
    }
}

/// Count the fields of a tuple struct / tuple variant body.
fn count_tuple_fields(body: TokenStream) -> usize {
    let tokens: Vec<TokenTree> = body.into_iter().collect();
    let mut count = 0;
    let mut pos = 0;
    while pos < tokens.len() {
        skip_attrs_and_vis(&tokens, &mut pos);
        if pos >= tokens.len() {
            break;
        }
        count += 1;
        skip_type(&tokens, &mut pos);
        if matches!(tokens.get(pos), Some(TokenTree::Punct(p)) if p.as_char() == ',') {
            pos += 1;
        }
    }
    count
}

fn parse_variants(body: TokenStream) -> Vec<Variant> {
    let tokens: Vec<TokenTree> = body.into_iter().collect();
    let mut variants = Vec::new();
    let mut pos = 0;
    while pos < tokens.len() {
        skip_attrs_and_vis(&tokens, &mut pos);
        if pos >= tokens.len() {
            break;
        }
        let name = expect_ident(&tokens, &mut pos);
        let fields = match tokens.get(pos) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let f = VariantFields::Named(parse_named_fields(g.stream()));
                pos += 1;
                f
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let f = VariantFields::Tuple(count_tuple_fields(g.stream()));
                pos += 1;
                f
            }
            _ => VariantFields::Unit,
        };
        // Skip an explicit discriminant (`= expr`) if present.
        if matches!(tokens.get(pos), Some(TokenTree::Punct(p)) if p.as_char() == '=') {
            pos += 1;
            skip_type(&tokens, &mut pos);
        }
        if matches!(tokens.get(pos), Some(TokenTree::Punct(p)) if p.as_char() == ',') {
            pos += 1;
        }
        variants.push(Variant { name, fields });
    }
    variants
}

// ---------------------------------------------------------------------------
// Code generation
// ---------------------------------------------------------------------------

/// `impl<T, U>` header, `Name<T, U>` type, and a where clause bounding every
/// type parameter by `trait_path`.
fn impl_parts(item: &Item, trait_path: &str) -> (String, String, String) {
    if item.type_params.is_empty() {
        (String::new(), item.name.clone(), String::new())
    } else {
        let params = item.type_params.join(", ");
        let bounds = item
            .type_params
            .iter()
            .map(|p| format!("{p}: {trait_path}"))
            .collect::<Vec<_>>()
            .join(", ");
        (
            format!("<{params}>"),
            format!("{}<{params}>", item.name),
            format!("where {bounds}"),
        )
    }
}

fn gen_serialize(item: &Item) -> String {
    let (impl_generics, ty, where_clause) = impl_parts(item, "::serde::Serialize");
    let body = match &item.kind {
        Kind::Struct(fields) => {
            let pairs = fields
                .iter()
                .map(|f| format!("(\"{f}\".to_string(), ::serde::Serialize::to_value(&self.{f}))"))
                .collect::<Vec<_>>()
                .join(", ");
            format!("::serde::Value::Object(vec![{pairs}])")
        }
        Kind::TupleStruct(n) => {
            let items = (0..*n)
                .map(|i| format!("::serde::Serialize::to_value(&self.{i})"))
                .collect::<Vec<_>>()
                .join(", ");
            format!("::serde::Value::Array(vec![{items}])")
        }
        Kind::UnitStruct => "::serde::Value::Null".to_string(),
        Kind::Enum(variants) => {
            let name = &item.name;
            let arms = variants
                .iter()
                .map(|v| {
                    let vn = &v.name;
                    match &v.fields {
                        VariantFields::Unit => {
                            format!("{name}::{vn} => ::serde::Value::String(\"{vn}\".to_string()),")
                        }
                        VariantFields::Tuple(n) => {
                            let binds = (0..*n)
                                .map(|i| format!("__f{i}"))
                                .collect::<Vec<_>>()
                                .join(", ");
                            let items = (0..*n)
                                .map(|i| format!("::serde::Serialize::to_value(__f{i})"))
                                .collect::<Vec<_>>()
                                .join(", ");
                            format!(
                                "{name}::{vn}({binds}) => ::serde::vhelp::variant(\"{vn}\", \
                                 ::serde::Value::Array(vec![{items}])),"
                            )
                        }
                        VariantFields::Named(fields) => {
                            let binds = fields.join(", ");
                            let pairs = fields
                                .iter()
                                .map(|f| {
                                    format!(
                                        "(\"{f}\".to_string(), ::serde::Serialize::to_value({f}))"
                                    )
                                })
                                .collect::<Vec<_>>()
                                .join(", ");
                            format!(
                                "{name}::{vn} {{ {binds} }} => ::serde::vhelp::variant(\"{vn}\", \
                                 ::serde::Value::Object(vec![{pairs}])),"
                            )
                        }
                    }
                })
                .collect::<Vec<_>>()
                .join("\n            ");
            format!("match self {{\n            {arms}\n        }}")
        }
    };
    format!(
        "#[automatically_derived]\n\
         impl{impl_generics} ::serde::Serialize for {ty} {where_clause} {{\n\
         \x20   fn to_value(&self) -> ::serde::Value {{\n\
         \x20       {body}\n\
         \x20   }}\n\
         }}"
    )
}

fn gen_deserialize(item: &Item) -> String {
    let (impl_generics, ty, where_clause) = impl_parts(item, "::serde::Deserialize");
    let body = match &item.kind {
        Kind::Struct(fields) => {
            let inits = fields
                .iter()
                .map(|f| {
                    format!(
                        "{f}: ::serde::Deserialize::from_value(::serde::vhelp::field(v, \"{f}\")?)?,"
                    )
                })
                .collect::<Vec<_>>()
                .join("\n            ");
            format!("Ok(Self {{\n            {inits}\n        }})")
        }
        Kind::TupleStruct(n) => {
            let inits = (0..*n)
                .map(|i| {
                    format!("::serde::Deserialize::from_value(::serde::vhelp::element(v, {i})?)?")
                })
                .collect::<Vec<_>>()
                .join(", ");
            format!("Ok(Self({inits}))")
        }
        Kind::UnitStruct => "Ok(Self)".to_string(),
        Kind::Enum(variants) => {
            let name = &item.name;
            let arms = variants
                .iter()
                .map(|v| {
                    let vn = &v.name;
                    match &v.fields {
                        VariantFields::Unit => format!("\"{vn}\" => Ok({name}::{vn}),"),
                        VariantFields::Tuple(n) => {
                            let inits = (0..*n)
                                .map(|i| {
                                    format!(
                                        "::serde::Deserialize::from_value(\
                                         ::serde::vhelp::element(__payload, {i})?)?"
                                    )
                                })
                                .collect::<Vec<_>>()
                                .join(", ");
                            format!(
                                "\"{vn}\" => {{\n                let __payload = __payload_opt\
                                 .ok_or_else(|| ::serde::DeError::new(\
                                 \"variant `{vn}` expects a payload\"))?;\n                \
                                 Ok({name}::{vn}({inits}))\n            }}"
                            )
                        }
                        VariantFields::Named(fields) => {
                            let inits = fields
                                .iter()
                                .map(|f| {
                                    format!(
                                        "{f}: ::serde::Deserialize::from_value(\
                                         ::serde::vhelp::field(__payload, \"{f}\")?)?,"
                                    )
                                })
                                .collect::<Vec<_>>()
                                .join("\n                    ");
                            format!(
                                "\"{vn}\" => {{\n                let __payload = __payload_opt\
                                 .ok_or_else(|| ::serde::DeError::new(\
                                 \"variant `{vn}` expects a payload\"))?;\n                \
                                 Ok({name}::{vn} {{\n                    {inits}\n                \
                                 }})\n            }}"
                            )
                        }
                    }
                })
                .collect::<Vec<_>>()
                .join("\n            ");
            format!(
                "let (__tag, __payload_opt) = ::serde::vhelp::untag(v)?;\n        \
                 match __tag {{\n            {arms}\n            \
                 __other => Err(::serde::DeError::new(format!(\
                 \"unknown variant `{{__other}}` of {name}\"))),\n        }}"
            )
        }
    };
    format!(
        "#[automatically_derived]\n\
         impl{impl_generics} ::serde::Deserialize for {ty} {where_clause} {{\n\
         \x20   fn from_value(v: &::serde::Value) -> ::core::result::Result<Self, ::serde::DeError> {{\n\
         \x20       {body}\n\
         \x20   }}\n\
         }}"
    )
}
