//! Offline stand-in for `criterion`.
//!
//! Implements the benchmarking surface the workspace's benches use —
//! [`Criterion::bench_function`], [`Criterion::benchmark_group`],
//! `bench_with_input`, [`BenchmarkId`], `sample_size`,
//! `measurement_time`, [`Throughput`], and the `criterion_group!` /
//! `criterion_main!` macros — on a simple measurement scheme: a short
//! warmup, then `sample_size` samples, each timing a batch of iterations
//! sized so one sample takes roughly `measurement_time / sample_size`.
//! Reports min / median / mean per iteration on stdout.
//!
//! No statistical rigor (no outlier analysis, no baseline comparison);
//! the goal is honest relative numbers with zero dependencies.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Benchmark identifier: `function_id/parameter`.
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    pub fn new(function_id: impl std::fmt::Display, parameter: impl std::fmt::Display) -> Self {
        Self {
            id: format!("{function_id}/{parameter}"),
        }
    }

    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        Self {
            id: parameter.to_string(),
        }
    }
}

/// Throughput annotation (recorded, reported as elements/sec when set).
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    Elements(u64),
    Bytes(u64),
}

#[derive(Clone, Copy)]
struct Settings {
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
}

impl Default for Settings {
    fn default() -> Self {
        Self {
            // Upstream defaults to 100 samples / 5s; benches here are run on
            // constrained single-core machines, so default lighter.
            sample_size: 20,
            measurement_time: Duration::from_secs(2),
            warm_up_time: Duration::from_millis(300),
        }
    }
}

/// Top-level handle, created by `criterion_main!`.
#[derive(Default)]
pub struct Criterion {
    settings: Settings,
}

impl Criterion {
    pub fn sample_size(mut self, n: usize) -> Self {
        self.settings.sample_size = n.max(2);
        self
    }

    pub fn measurement_time(mut self, t: Duration) -> Self {
        self.settings.measurement_time = t;
        self
    }

    pub fn warm_up_time(mut self, t: Duration) -> Self {
        self.settings.warm_up_time = t;
        self
    }

    pub fn bench_function<F>(&mut self, id: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_bench(id, self.settings, None, &mut f);
        self
    }

    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let settings = self.settings;
        BenchmarkGroup {
            _parent: self,
            name: name.into(),
            settings,
            throughput: None,
        }
    }

    /// Called by `criterion_main!` after all groups ran.
    pub fn final_summary(&mut self) {}
}

/// A named group sharing settings, mirroring `criterion::BenchmarkGroup`.
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    name: String,
    settings: Settings,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.settings.sample_size = n.max(2);
        self
    }

    pub fn measurement_time(&mut self, t: Duration) -> &mut Self {
        self.settings.measurement_time = t;
        self
    }

    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    pub fn bench_function<F>(&mut self, id: impl IntoBenchId, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, id.into_bench_id());
        run_bench(&full, self.settings, self.throughput, &mut f);
        self
    }

    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let full = format!("{}/{}", self.name, id.id);
        run_bench(&full, self.settings, self.throughput, &mut |b| f(b, input));
        self
    }

    pub fn finish(self) {}
}

/// Accepts both `&str` and `BenchmarkId` for `bench_function`.
pub trait IntoBenchId {
    fn into_bench_id(self) -> String;
}

impl IntoBenchId for &str {
    fn into_bench_id(self) -> String {
        self.to_string()
    }
}

impl IntoBenchId for String {
    fn into_bench_id(self) -> String {
        self
    }
}

impl IntoBenchId for BenchmarkId {
    fn into_bench_id(self) -> String {
        self.id
    }
}

/// Passed to the benchmark closure; `iter` runs and times the payload.
pub struct Bencher {
    settings: Settings,
    /// Collected per-iteration mean of each sample, in nanoseconds.
    samples: Vec<f64>,
}

impl Bencher {
    pub fn iter<O, R>(&mut self, mut routine: R)
    where
        R: FnMut() -> O,
    {
        // Warmup: run until the warmup budget is spent, measuring the rough
        // per-iteration cost to size measurement batches.
        let warm_start = Instant::now();
        let mut warm_iters: u64 = 0;
        while warm_start.elapsed() < self.settings.warm_up_time {
            black_box(routine());
            warm_iters += 1;
        }
        let per_iter = warm_start.elapsed().as_secs_f64() / warm_iters.max(1) as f64;

        let per_sample =
            self.settings.measurement_time.as_secs_f64() / self.settings.sample_size as f64;
        let batch = ((per_sample / per_iter.max(1e-9)) as u64).clamp(1, 1_000_000);

        self.samples.clear();
        for _ in 0..self.settings.sample_size {
            let t0 = Instant::now();
            for _ in 0..batch {
                black_box(routine());
            }
            let elapsed = t0.elapsed().as_nanos() as f64;
            self.samples.push(elapsed / batch as f64);
        }
    }
}

fn run_bench(
    id: &str,
    settings: Settings,
    throughput: Option<Throughput>,
    f: &mut dyn FnMut(&mut Bencher),
) {
    let mut bencher = Bencher {
        settings,
        samples: Vec::new(),
    };
    f(&mut bencher);
    if bencher.samples.is_empty() {
        println!("{id:<50} (no samples)");
        return;
    }
    let mut sorted = bencher.samples.clone();
    sorted.sort_by(|a, b| a.total_cmp(b));
    let min = sorted[0];
    let median = sorted[sorted.len() / 2];
    let mean = sorted.iter().sum::<f64>() / sorted.len() as f64;
    let extra = match throughput {
        Some(Throughput::Elements(n)) => {
            format!("  ({:.2e} elem/s)", n as f64 / (median * 1e-9))
        }
        Some(Throughput::Bytes(n)) => {
            format!("  ({:.2e} B/s)", n as f64 / (median * 1e-9))
        }
        None => String::new(),
    };
    println!(
        "{id:<50} min {:>12}  median {:>12}  mean {:>12}{extra}",
        fmt_ns(min),
        fmt_ns(median),
        fmt_ns(mean),
    );
}

fn fmt_ns(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.1} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.2} ms", ns / 1_000_000.0)
    } else {
        format!("{:.3} s", ns / 1_000_000_000.0)
    }
}

/// Declares a benchmark group function, mirroring criterion's macro forms.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares `main()` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
